"""Technology mapping: SOP logic networks onto a standard-cell library.

This is the repository's stand-in for Berkeley ABC in the paper's flow
(BLIF → mapped Verilog netlist).  Each SOP node is decomposed into library
gates; multi-input operators are split into trees bounded by the library's
maximum arity.  Two mapping styles produce different circuit textures:

* ``"aoi"`` — AND-of-literals per cube, OR of cubes, plus a final inverter
  for off-set covers.  Yields AND/OR/INV-rich netlists.
* ``"nand"`` — the classic two-level NAND-NAND realization, yielding the
  controlling-value-heavy texture of the ISCAS'85 originals.
* ``"aig"`` — maps through a strashed and-inverter graph and emits an
  AND2/INV netlist (the texture ABC's ``strash; map`` produces before
  cell selection); structural redundancy is removed by the hashing.

Mapping optimality is irrelevant to the fingerprinting study; producing a
*legal* netlist of bounded-arity cells with realistic structure is the job.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import telemetry
from ..cells.library import CellLibrary
from ..netlist.build import CircuitBuilder
from ..netlist.circuit import Circuit
from ..netlist.sop import SopNetwork, SopNode
from ..netlist.transform import cleanup
from ..errors import ReproError


class MappingError(ReproError, ValueError):
    """Raised when a network cannot be mapped onto the library."""



def _free_name(builder: CircuitBuilder, prefer: Optional[str]) -> Optional[str]:
    """Use a preferred node name only while it is still unclaimed.

    Intermediate gates created for earlier cubes may have consumed the
    auto-generated name that matches a BLIF node's own name; primary
    outputs get their names restored by the aliasing pass in ``map``.
    """
    if prefer is not None and builder.circuit.has_net(prefer):
        return None
    return prefer


class TechMapper:
    """Maps :class:`SopNetwork` instances onto one cell library."""

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        style: str = "aoi",
        minimize: bool = False,
    ) -> None:
        if style not in ("aoi", "nand", "aig"):
            raise MappingError(f"unknown mapping style {style!r}")
        self.library = library
        self.style = style
        self.minimize = minimize

    def map(self, network: SopNetwork, name: Optional[str] = None) -> Circuit:
        """Map the whole network; returns a validated, cleaned circuit."""
        network.validate()
        if self.minimize:
            from .sopmin import minimize_network

            network = minimize_network(network)
        if self.style == "aig":
            return self._map_via_aig(network, name)
        builder = CircuitBuilder(name or network.name, self.library)
        builder.circuit.add_inputs(network.inputs)
        signal_of: Dict[str, str] = {n: n for n in network.inputs}
        inverted_of: Dict[str, str] = {}

        def literal(net: str, positive: bool) -> str:
            signal = signal_of[net]
            if positive:
                return signal
            cached = inverted_of.get(net)
            if cached is None:
                cached = builder.inv(signal)
                inverted_of[net] = cached
            return cached

        for node in network.topological_order():
            signal_of[node.name] = self._map_node(builder, node, literal)

        # Primary outputs must carry their declared names: alias with BUFs
        # when the mapped signal landed on an internal name.
        for net in network.outputs:
            signal = signal_of[net]
            if signal != net and not builder.circuit.has_net(net):
                builder.buf(signal, name=net)
                signal_of[net] = net
        builder.circuit.add_outputs(network.outputs)
        circuit = builder.done(validate=True)
        cleanup(circuit)
        circuit.validate()
        return circuit

    # ------------------------------------------------------------------ #

    def _map_via_aig(self, network: SopNetwork, name: Optional[str]) -> Circuit:
        """SOP network -> strashed AIG -> AND2/INV netlist."""
        from ..aig.graph import Aig, aig_to_circuit, lit_not

        aig = Aig()
        literal_of = {n: aig.add_input(n) for n in network.inputs}
        for node in network.topological_order():
            if node.is_constant:
                literal_of[node.name] = 1 if node.constant_value() else 0
                continue
            terms = []
            for cube in node.cubes:
                cube_literals = []
                for input_net, lit in zip(node.inputs, cube.literals):
                    if lit == "-":
                        continue
                    value = literal_of[input_net]
                    cube_literals.append(value if lit == "1" else lit_not(value))
                terms.append(aig.and_many(cube_literals) if cube_literals else 1)
            value = aig.or_many(terms)
            if node.output_value == "0":
                value = lit_not(value)
            literal_of[node.name] = value
        for output in network.outputs:
            aig.add_output(output, literal_of[output])
        circuit = aig_to_circuit(aig, name or network.name, self.library)
        cleanup(circuit)
        circuit.validate()
        return circuit

    def _map_node(self, builder: CircuitBuilder, node: SopNode, literal) -> str:
        prefer_name = node.name if not builder.circuit.has_net(node.name) else None
        if node.is_constant:
            kind = "CONST1" if node.constant_value() else "CONST0"
            net = prefer_name or builder.fresh("const")
            builder.circuit.add_gate(net, kind, [])
            return net

        invert_output = node.output_value == "0"
        if not node.cubes:
            # Empty on-set cover => constant 0 (or 1 for off-set covers).
            kind = "CONST1" if invert_output else "CONST0"
            net = prefer_name or builder.fresh("const")
            builder.circuit.add_gate(net, kind, [])
            return net

        if self.style == "nand" and len(node.cubes) > 1:
            return self._map_nand_nand(builder, node, literal, invert_output, prefer_name)
        return self._map_aoi(builder, node, literal, invert_output, prefer_name)

    def _cube_literals(self, node: SopNode, cube, literal) -> List[str]:
        nets = []
        for input_net, lit in zip(node.inputs, cube.literals):
            if lit == "-":
                continue
            nets.append(literal(input_net, lit == "1"))
        return nets

    def _map_aoi(
        self,
        builder: CircuitBuilder,
        node: SopNode,
        literal,
        invert_output: bool,
        prefer_name: Optional[str],
    ) -> str:
        terms: List[str] = []
        for cube in node.cubes:
            nets = self._cube_literals(node, cube, literal)
            if not nets:
                # Universal cube: the function is constant (possibly inverted).
                kind = "CONST0" if invert_output else "CONST1"
                net = _free_name(builder, prefer_name) or builder.fresh("const")
                builder.circuit.add_gate(net, kind, [])
                return net
            terms.append(builder.op("AND", nets) if len(nets) > 1 else nets[0])
        prefer_name = _free_name(builder, prefer_name)
        if len(terms) == 1:
            value = terms[0]
            if invert_output:
                return builder.inv(value, name=prefer_name)
            if prefer_name is not None:
                return builder.buf(value, name=prefer_name)
            return value
        if invert_output:
            return builder.op("NOR", terms, name=prefer_name)
        return builder.op("OR", terms, name=prefer_name)

    def _map_nand_nand(
        self,
        builder: CircuitBuilder,
        node: SopNode,
        literal,
        invert_output: bool,
        prefer_name: Optional[str],
    ) -> str:
        terms: List[str] = []
        for cube in node.cubes:
            nets = self._cube_literals(node, cube, literal)
            if not nets:
                kind = "CONST0" if invert_output else "CONST1"
                net = _free_name(builder, prefer_name) or builder.fresh("const")
                builder.circuit.add_gate(net, kind, [])
                return net
            if len(nets) == 1:
                terms.append(builder.inv(nets[0]))
            else:
                terms.append(builder.op("NAND", nets))
        # OR of cubes == NAND of the per-cube NANDs.
        prefer_name = _free_name(builder, prefer_name)
        if invert_output:
            inner = builder.op("NAND", terms)
            return builder.inv(inner, name=prefer_name)
        return builder.op("NAND", terms, name=prefer_name)


def map_network(
    network: SopNetwork,
    library: Optional[CellLibrary] = None,
    style: str = "aoi",
    name: Optional[str] = None,
    minimize: bool = False,
) -> Circuit:
    """One-shot mapping convenience function."""
    with telemetry.span(
        "techmap.map", design=name or network.name, style=style,
        nodes=len(network.nodes),
    ) as map_span:
        circuit = TechMapper(library, style, minimize=minimize).map(network, name=name)
        map_span.set(gates=circuit.n_gates)
        telemetry.count("techmap.networks")
        telemetry.count("techmap.gates", circuit.n_gates)
        return circuit
