"""Windowed, simulation-guided ODC classification engine.

The engine answers one question per *candidate*: given a net ``n`` and
an optional condition ``X == c`` on another net, is flipping ``n``'s
value ever observable at a primary output while the condition holds?
The paper's fingerprint locations are exactly the candidates where the
answer is *no* (the trigger at the primary gate's controlling value
makes the fanout-free cone unobservable), so this engine is the
validation substrate behind :func:`repro.fingerprint.locations.find_locations`
and the redundancy analysis in :mod:`repro.analysis.testability`.

Two strategies compute the same exact verdict:

* ``"global"`` — the baseline: per candidate, re-simulate the *full*
  fanout cone against the shared packed stimulus (refutes with a
  concrete witness vector), then prove the remainder with a
  full-circuit flip miter on one persistent
  :class:`~repro.sat.solver.CdclSolver` (base circuit Tseitin-encoded
  once; per-candidate cone deltas retired through activation literals,
  the :class:`~repro.sat.incremental.IncrementalCecSession` discipline).

* ``"windowed"`` — the fast path: re-simulate only a local
  :class:`~repro.odcwin.window.Window`, then try two cheap *sound
  confirmations* before any global work: ternary constant propagation
  through the window under the condition, and a window-local Tseitin
  miter with free side inputs.  Only candidates that remain UNKNOWN
  after both are discharged on the shared full-circuit miter.

Soundness ledger (why the strategies agree bit-for-bit):

* a simulation difference at a primary output inside the window is a
  real witness — REFUTED is exact;
* a difference that cannot even reach the window boundary (constant
  propagation, or UNSAT of the window miter over *free* side inputs)
  can never reach a primary output — CONFIRMED is exact;
* everything else falls through to the full-circuit miter, which is
  exact in both directions.  With an unlimited budget no candidate is
  ever left UNKNOWN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..budget import Budget
from ..cells import functions
from ..ir import compile_circuit
from ..ir.kernels import eval_gate
from ..netlist.circuit import Circuit
from ..sat.solver import CdclSolver
from ..sat.tseitin import _encode, encode_circuit
from ..sim.simulator import Simulator
from ..sim.vectors import WORD_BITS, random_stimulus, vector_of
from .window import Window, WindowConfig, extract_window

STRATEGIES = ("windowed", "global")


class OdcStatus(Enum):
    """Classification outcome for one candidate."""

    CONFIRMED = "confirmed"  # flip never observable while condition holds
    REFUTED = "refuted"      # concrete witness exists
    UNKNOWN = "unknown"      # only under an exhausted budget


@dataclass(frozen=True)
class OdcVerdict:
    """Verdict for one ``(net, condition)`` candidate.

    ``method`` records the tier that decided: ``"sim"``, ``"constprop"``,
    ``"window-sat"``, ``"miter-sat"`` or ``"trivial"``.  ``witness`` is a
    primary-input assignment proving REFUTED (condition holds and the
    flip reaches a primary output); CONFIRMED verdicts carry ``None``.
    """

    net: str
    condition_net: Optional[str]
    condition_value: int
    status: OdcStatus
    method: str
    witness: Optional[Dict[str, int]] = None
    window_gates: int = 0

    @property
    def confirmed(self) -> bool:
        return self.status is OdcStatus.CONFIRMED

    @property
    def refuted(self) -> bool:
        return self.status is OdcStatus.REFUTED


@dataclass
class EngineStats:
    """Work accounting across all candidates classified by one engine."""

    candidates: int = 0
    windows_built: int = 0
    sim_refuted: int = 0
    const_confirmed: int = 0
    cone_const_confirmed: int = 0
    window_sat_confirmed: int = 0
    miter_sat_calls: int = 0
    miter_refuted: int = 0
    miter_confirmed: int = 0
    unknown: int = 0
    window_gate_total: int = 0
    by_method: Dict[str, int] = field(default_factory=dict)

    def _decided(self, method: str) -> None:
        self.by_method[method] = self.by_method.get(method, 0) + 1


def _ternary(kind: str, vals: Sequence[Optional[int]]) -> Optional[int]:
    """Three-valued gate evaluation (``None`` = unknown)."""
    if kind == "CONST0":
        return 0
    if kind == "CONST1":
        return 1
    if kind == "BUF":
        return vals[0]
    if kind == "INV":
        return None if vals[0] is None else 1 - vals[0]
    base = functions.base_operator(kind)
    if base == "AND":
        if any(v == 0 for v in vals):
            out: Optional[int] = 0
        elif all(v == 1 for v in vals):
            out = 1
        else:
            out = None
    elif base == "OR":
        if any(v == 1 for v in vals):
            out = 1
        elif all(v == 0 for v in vals):
            out = 0
        else:
            out = None
    else:  # XOR family
        if any(v is None for v in vals):
            out = None
        else:
            out = sum(vals) & 1
    if out is not None and functions.is_inverting(kind):
        out = 1 - out
    return out


class WindowedOdcEngine:
    """Classify flip-observability candidates of one circuit.

    Construct once per circuit (the shared stimulus is simulated once
    and the full-circuit miter is encoded lazily, on the first candidate
    that needs it), then call :meth:`classify` per candidate.  The
    circuit must not be structurally mutated while the engine lives —
    detected through the circuit version and rejected, the same contract
    as :class:`~repro.sat.incremental.IncrementalCecSession`.
    """

    def __init__(
        self,
        circuit: Circuit,
        strategy: str = "windowed",
        config: Optional[WindowConfig] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"bad strategy {strategy!r} (valid: {', '.join(STRATEGIES)})"
            )
        self.circuit = circuit
        self.strategy = strategy
        self.config = config or WindowConfig()
        self.stats = EngineStats()
        self._version = circuit.version
        self._compiled = compile_circuit(circuit)
        self._po_ids = [int(i) for i in self._compiled.output_ids]
        self._po_set = set(self._po_ids)
        self._matrix: Optional[np.ndarray] = None
        self._stimulus = None
        # Lazy persistent full-circuit encoding (the exact tier).
        self._solver: Optional[CdclSolver] = None
        self._var_of: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ #
    # shared infrastructure
    # ------------------------------------------------------------------ #

    def _values(self) -> np.ndarray:
        """Packed value matrix of the whole circuit under the shared stimulus."""
        if self._matrix is None:
            self._stimulus = random_stimulus(
                self.circuit.inputs, self.config.n_vectors, seed=self.config.seed
            )
            self._matrix = Simulator(self.circuit).run_matrix(self._stimulus)
        return self._matrix

    def _exact(self) -> CdclSolver:
        """The persistent full-circuit solver, encoded on first use."""
        if self._solver is None:
            with telemetry.span(
                "odcwin.encode_base", design=self.circuit.name,
                gates=self.circuit.n_gates,
            ):
                encoding = encode_circuit(self.circuit)
                self._solver = CdclSolver(encoding.cnf)
                self._var_of = dict(encoding.var_of)
        return self._solver

    def _condition_words(self, cond_id: Optional[int], value: int) -> np.ndarray:
        values = self._values()
        words = values.shape[1]
        if cond_id is None:
            return np.full(words, ~np.uint64(0), dtype=np.uint64)
        row = values[cond_id]
        return row if value else ~row

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def classify(
        self,
        net: str,
        condition_net: Optional[str] = None,
        condition_value: int = 1,
        budget: Optional[Budget] = None,
    ) -> OdcVerdict:
        """Classify one candidate; exact CONFIRMED/REFUTED verdict.

        ``condition_net=None`` asks the unconditional question — is the
        net observable at all? — which is the redundancy query used by
        :func:`repro.analysis.testability.unobservable_nets`.  A
        ``budget`` bounds only the final SAT tier; exhausting it yields
        an UNKNOWN verdict instead of hanging.
        """
        if self.circuit.version != self._version:
            raise ValueError("circuit was mutated after engine construction")
        if not self.circuit.has_net(net):
            raise ValueError(f"unknown net {net!r}")
        if condition_net is not None and not self.circuit.has_net(condition_net):
            raise ValueError(f"unknown condition net {condition_net!r}")
        if condition_value not in (0, 1):
            raise ValueError("condition_value must be 0 or 1")
        self.stats.candidates += 1
        telemetry.count("odcwin.candidates")
        verdict = (
            self._classify_windowed(net, condition_net, condition_value, budget)
            if self.strategy == "windowed"
            else self._classify_global(net, condition_net, condition_value, budget)
        )
        self.stats._decided(verdict.method)
        telemetry.count(f"odcwin.verdict.{verdict.status.value}")
        return verdict

    def classify_many(
        self,
        candidates: Sequence,
        budget: Optional[Budget] = None,
    ) -> List[OdcVerdict]:
        """Classify ``(net, condition_net, condition_value)`` triples in order."""
        return [
            self.classify(net, cond, value, budget=budget)
            for net, cond, value in candidates
        ]

    # ------------------------------------------------------------------ #
    # simulation tier (exact REFUTED, shared by both strategies)
    # ------------------------------------------------------------------ #

    def _sim_refute(
        self,
        seed_id: int,
        member_ids: Sequence[int],
        po_ids: Sequence[int],
        seed_is_po: bool,
        cond_words: np.ndarray,
    ) -> Optional[int]:
        """First stimulus index where the flip hits a visible PO, or None.

        ``member_ids`` must be a topologically sorted, fanin-closed slice
        of the seed's fanout cone (a window or the full cone); only
        differences at *primary outputs inside that slice* count.
        """
        values = self._values()
        flipped: Dict[int, np.ndarray] = {seed_id: ~values[seed_id]}
        compiled = self._compiled
        for gid in member_ids:
            gid = int(gid)
            row = compiled.fanin_row(gid)
            if not any(int(f) in flipped for f in row):
                continue
            operands = [
                flipped[int(f)] if int(f) in flipped else values[int(f)]
                for f in row
            ]
            out = eval_gate(int(compiled.kinds[gid]), operands)
            if not np.array_equal(out, values[gid]):
                flipped[gid] = out
        diff = np.zeros(values.shape[1], dtype=np.uint64)
        for po in po_ids:
            po = int(po)
            if po in flipped:
                diff |= flipped[po] ^ values[po]
        if seed_is_po:
            diff |= ~np.uint64(0)
        diff &= cond_words
        nonzero = np.nonzero(diff)[0]
        if not len(nonzero):
            return None
        word = int(nonzero[0])
        bits = int(diff[word])
        return word * WORD_BITS + ((bits & -bits).bit_length() - 1)

    # ------------------------------------------------------------------ #
    # ternary constant propagation tier (sound CONFIRMED, windowed only)
    # ------------------------------------------------------------------ #

    def _const_confirm(
        self,
        window: Window,
        cond_id: Optional[int],
        cond_value: int,
    ) -> bool:
        """True when constant propagation proves no escape from the window.

        Both copies of the window (seed as-is / seed flipped) are
        propagated in three-valued logic; a member is *pairwise equal*
        when all its fanins are, or when both copies evaluate to the
        same known constant (the condition typically forces the first
        gate to its controlled value, killing the difference at the
        window's entry).  Condition values are only injected at nets the
        flip cannot reach (side inputs), so the propagation stays sound.
        """
        if window.seed_escapes or window.seed_is_po:
            return False
        compiled = self._compiled
        seed = window.seed_id
        member_set = set(int(g) for g in window.gate_ids)
        val_a: Dict[int, Optional[int]] = {}
        val_b: Dict[int, Optional[int]] = {}
        equal: Dict[int, bool] = {}
        if cond_id is not None and cond_id != seed and cond_id not in member_set:
            val_a[cond_id] = val_b[cond_id] = cond_value
        if cond_id == seed:
            val_a[seed] = cond_value
            val_b[seed] = 1 - cond_value
        else:
            val_a[seed] = val_b[seed] = None
        equal[seed] = False
        for gid in window.gate_ids:
            gid = int(gid)
            gate = compiled.gate_of(gid)
            row = [int(f) for f in compiled.fanin_row(gid)]
            ins_a = [val_a.get(f) for f in row]
            ins_b = [val_b.get(f) for f in row]
            a = _ternary(gate.kind, ins_a)
            b = _ternary(gate.kind, ins_b)
            val_a[gid], val_b[gid] = a, b
            equal[gid] = all(equal.get(f, True) for f in row) or (
                a is not None and a == b
            )
        return all(equal[int(o)] for o in window.output_ids)

    # ------------------------------------------------------------------ #
    # window-local SAT tier (sound CONFIRMED, windowed only)
    # ------------------------------------------------------------------ #

    def _window_sat_confirm(
        self,
        window: Window,
        cond_id: Optional[int],
        cond_value: int,
    ) -> bool:
        """True when the window miter over *free* side inputs is UNSAT.

        Side inputs are unconstrained, so any real escape assignment is
        still a model — UNSAT soundly proves the flip can never cross
        the window boundary while the condition holds.
        """
        if window.seed_escapes or window.seed_is_po:
            return False
        compiled = self._compiled
        solver = CdclSolver()
        member_set = set(int(g) for g in window.gate_ids)
        shared: Dict[int, int] = {}  # side-input net ID -> shared variable

        def side_var(fid: int) -> int:
            var = shared.get(fid)
            if var is None:
                var = solver.new_var()
                shared[fid] = var
            return var

        seed_a = solver.new_var()
        seed_b = solver.new_var()
        solver.add_clause([seed_a, seed_b])
        solver.add_clause([-seed_a, -seed_b])
        copy_a: Dict[int, int] = {window.seed_id: seed_a}
        copy_b: Dict[int, int] = {window.seed_id: seed_b}
        for gid in window.gate_ids:
            gid = int(gid)
            gate = compiled.gate_of(gid)
            row = [int(f) for f in compiled.fanin_row(gid)]
            ins_a = [copy_a[f] if f in copy_a else side_var(f) for f in row]
            ins_b = [copy_b[f] if f in copy_b else side_var(f) for f in row]
            out_a = solver.new_var()
            _encode(solver, gate.kind, out_a, ins_a)
            copy_a[gid] = out_a
            if ins_a == ins_b:
                copy_b[gid] = out_a  # flip cannot reach this member
                continue
            out_b = solver.new_var()
            _encode(solver, gate.kind, out_b, ins_b)
            copy_b[gid] = out_b

        diffs: List[int] = []
        for oid in window.output_ids:
            oid = int(oid)
            if copy_a[oid] == copy_b[oid]:
                continue
            d = solver.new_var()
            a, b = copy_a[oid], copy_b[oid]
            solver.add_clause([-d, a, b])
            solver.add_clause([-d, -a, -b])
            solver.add_clause([d, -a, b])
            solver.add_clause([d, a, -b])
            diffs.append(d)
        if not diffs:
            return True
        solver.add_clause(diffs)
        assumptions: List[int] = []
        if cond_id is not None:
            if cond_id == window.seed_id:
                cond_var: Optional[int] = seed_a
            elif cond_id in member_set:
                cond_var = copy_a[cond_id]
            elif cond_id in shared:
                cond_var = shared[cond_id]
            else:
                cond_var = None  # outside the window: leave unconstrained
            if cond_var is not None:
                assumptions.append(cond_var if cond_value else -cond_var)
        result = solver.solve(assumptions=assumptions)
        return not result.satisfiable and not result.unknown

    # ------------------------------------------------------------------ #
    # exact full-circuit miter tier (decides both ways)
    # ------------------------------------------------------------------ #

    def _miter_decide(
        self,
        net: str,
        cond_net: Optional[str],
        cond_value: int,
        budget: Optional[Budget],
        window_gates: int,
    ) -> OdcVerdict:
        """Full-circuit flip miter: exact in both directions.

        The base circuit is encoded once per engine; each candidate adds
        a flipped copy of the seed's fanout cone plus XOR difference
        detectors, gates the "some visible output differs" clause behind
        a fresh activation literal, solves under assumptions, and then
        permanently retires the activation literal — the
        :class:`IncrementalCecSession` discipline, so learned clauses
        accumulate across candidates.
        """
        compiled = self._compiled
        solver = self._exact()
        var_of = self._var_of
        assert var_of is not None
        seed_id = compiled.id_of(net)
        self.stats.miter_sat_calls += 1
        telemetry.count("odcwin.miter_calls")

        cond_lit: Optional[int] = None
        if cond_net is not None:
            cond_var = var_of[cond_net]
            cond_lit = cond_var if cond_value else -cond_var

        def finish(result, method: str) -> OdcVerdict:
            if result.unknown:
                self.stats.unknown += 1
                return OdcVerdict(
                    net, cond_net, cond_value, OdcStatus.UNKNOWN,
                    method, None, window_gates,
                )
            if result.satisfiable:
                witness = {
                    name: int(result.value(var_of[name]))
                    for name in self.circuit.inputs
                }
                self.stats.miter_refuted += 1
                return OdcVerdict(
                    net, cond_net, cond_value, OdcStatus.REFUTED,
                    method, witness, window_gates,
                )
            self.stats.miter_confirmed += 1
            return OdcVerdict(
                net, cond_net, cond_value, OdcStatus.CONFIRMED,
                method, None, window_gates,
            )

        with telemetry.span(
            "odcwin.miter", design=self.circuit.name, net=net
        ):
            if seed_id in self._po_set:
                # Flipping a primary output always changes it: the verdict
                # reduces to satisfiability of the condition itself.
                assumptions = [cond_lit] if cond_lit is not None else []
                return finish(
                    solver.solve(assumptions=assumptions, budget=budget),
                    "miter-sat",
                )

            flip: Dict[int, int] = {}
            seed_var = var_of[net]
            flipped_seed = solver.new_var()
            solver.add_clause([-flipped_seed, -seed_var])
            solver.add_clause([flipped_seed, seed_var])
            flip[seed_id] = flipped_seed
            for gid in compiled.fanout_cone(net):
                gid = int(gid)
                gate = compiled.gate_of(gid)
                row = [int(f) for f in compiled.fanin_row(gid)]
                if not any(f in flip for f in row):
                    continue
                ins = [
                    flip[f] if f in flip else var_of[compiled.name_of(f)]
                    for f in row
                ]
                out = solver.new_var()
                _encode(solver, gate.kind, out, ins)
                flip[gid] = out

            diffs: List[int] = []
            for po in self._po_ids:
                if po not in flip:
                    continue
                a = var_of[compiled.name_of(po)]
                b = flip[po]
                d = solver.new_var()
                solver.add_clause([-d, a, b])
                solver.add_clause([-d, -a, -b])
                solver.add_clause([d, -a, b])
                solver.add_clause([d, a, -b])
                diffs.append(d)
            if not diffs:
                # The cone never reaches a primary output: dead logic.
                self.stats.miter_confirmed += 1
                return OdcVerdict(
                    net, cond_net, cond_value, OdcStatus.CONFIRMED,
                    "trivial", None, window_gates,
                )
            activation = solver.new_var()
            solver.add_clause([-activation] + diffs)
            assumptions = [activation]
            if cond_lit is not None:
                assumptions.append(cond_lit)
            try:
                return finish(
                    solver.solve(assumptions=assumptions, budget=budget),
                    "miter-sat",
                )
            finally:
                solver.add_clause([-activation])

    # ------------------------------------------------------------------ #
    # strategies
    # ------------------------------------------------------------------ #

    def _cone_const_confirm(
        self, seed_id: int, cond_id: Optional[int], cond_value: int
    ) -> bool:
        """Constant-propagate over the candidate's *entire* fanout cone.

        An uncut "window" spanning the full cone (outputs are exactly the
        cone's primary outputs), so the same sound constant propagation
        applies — at O(circuit) cost.  O(cone) per call, but still far
        cheaper than the full-circuit miter it guards.
        """
        compiled = self._compiled
        cone = compiled.fanout_cone(compiled.name_of(seed_id))
        full = extract_window(
            compiled, seed_id,
            WindowConfig(
                max_levels=len(compiled.names) + 1,
                max_gates=max(1, len(cone)),
            ),
        )
        return self._const_confirm(full, cond_id, cond_value)

    def _classify_windowed(
        self,
        net: str,
        cond_net: Optional[str],
        cond_value: int,
        budget: Optional[Budget],
    ) -> OdcVerdict:
        compiled = self._compiled
        seed_id = compiled.id_of(net)
        cond_id = None if cond_net is None else compiled.id_of(cond_net)
        window = extract_window(compiled, seed_id, self.config)
        self.stats.windows_built += 1
        self.stats.window_gate_total += window.n_gates
        telemetry.count("odcwin.windows_built")
        telemetry.observe("odcwin.window_gates", window.n_gates)

        index = self._sim_refute(
            seed_id,
            window.gate_ids,
            window.po_ids,
            window.seed_is_po,
            self._condition_words(cond_id, cond_value),
        )
        if index is not None:
            self.stats.sim_refuted += 1
            telemetry.count("odcwin.sim_refuted")
            return OdcVerdict(
                net, cond_net, cond_value, OdcStatus.REFUTED,
                "sim", vector_of(self._stimulus, index), window.n_gates,
            )
        if self._const_confirm(window, cond_id, cond_value):
            self.stats.const_confirmed += 1
            telemetry.count("odcwin.const_confirmed")
            return OdcVerdict(
                net, cond_net, cond_value, OdcStatus.CONFIRMED,
                "constprop", None, window.n_gates,
            )
        if self._window_sat_confirm(window, cond_id, cond_value):
            self.stats.window_sat_confirmed += 1
            telemetry.count("odcwin.window_sat_confirmed")
            return OdcVerdict(
                net, cond_net, cond_value, OdcStatus.CONFIRMED,
                "window-sat", None, window.n_gates,
            )
        # Escalation: the window tiers were defeated (e.g. a degenerate
        # window — the seed's fanout gate can sit more than ``max_levels``
        # longest-path levels above the seed and be cut immediately).
        # A whole-cone constant propagation is O(cone) and usually decides
        # these, keeping the full-circuit miter as a true last resort.
        if self._cone_const_confirm(seed_id, cond_id, cond_value):
            self.stats.cone_const_confirmed += 1
            telemetry.count("odcwin.cone_const_confirmed")
            return OdcVerdict(
                net, cond_net, cond_value, OdcStatus.CONFIRMED,
                "constprop", None, window.n_gates,
            )
        telemetry.count("odcwin.miter_discharged")
        return self._miter_decide(net, cond_net, cond_value, budget, window.n_gates)

    def _classify_global(
        self,
        net: str,
        cond_net: Optional[str],
        cond_value: int,
        budget: Optional[Budget],
    ) -> OdcVerdict:
        """The baseline: O(circuit) work per candidate, no locality.

        Re-simulates and constant-propagates over the candidate's *entire*
        fanout cone (the naive global computation the windowed engine
        exists to avoid), with the shared full-circuit miter for anything
        the two global passes cannot decide.  Tier soundness is identical
        to the windowed path, so verdicts agree bit-for-bit — only the
        per-candidate cost differs.
        """
        compiled = self._compiled
        seed_id = compiled.id_of(net)
        cond_id = None if cond_net is None else compiled.id_of(cond_net)
        cone = compiled.fanout_cone(net)
        cone_pos = [int(g) for g in cone if int(g) in self._po_set]
        index = self._sim_refute(
            seed_id,
            cone,
            cone_pos,
            seed_id in self._po_set,
            self._condition_words(cond_id, cond_value),
        )
        if index is not None:
            self.stats.sim_refuted += 1
            telemetry.count("odcwin.sim_refuted")
            return OdcVerdict(
                net, cond_net, cond_value, OdcStatus.REFUTED,
                "sim", vector_of(self._stimulus, index), 0,
            )
        if self._cone_const_confirm(seed_id, cond_id, cond_value):
            self.stats.const_confirmed += 1
            telemetry.count("odcwin.const_confirmed")
            return OdcVerdict(
                net, cond_net, cond_value, OdcStatus.CONFIRMED,
                "constprop", None, 0,
            )
        return self._miter_decide(net, cond_net, cond_value, budget, 0)


def verify_witness(circuit: Circuit, verdict: OdcVerdict) -> bool:
    """Check a REFUTED witness by direct simulation.

    True when, at the witness input vector, the condition holds and
    flipping the net's value changes at least one primary output — i.e.
    the witness really demonstrates conditional observability.
    """
    if verdict.witness is None:
        return False
    from ..sim.observability import observability_words
    from ..sim.vectors import pack_vectors

    stimulus = pack_vectors(circuit.inputs, [verdict.witness])
    values = Simulator(circuit).run(stimulus)
    if verdict.condition_net is not None:
        held = int(values[verdict.condition_net][0]) & 1
        if held != verdict.condition_value:
            return False
    words = observability_words(circuit, verdict.net, values)
    return bool(int(words[0]) & 1)
