"""Local window extraction over the compiled-circuit CSR adjacency.

A *window* is the slice of a circuit the windowed ODC engine reasons
about for one candidate net: the net's transitive fanout cone, cut at a
maximum level distance and a maximum gate count, plus the *side inputs*
(fanins of window members that are neither members nor the seed net).
Because compiled-IR net IDs are topologically numbered, a min-heap walk
over the fanout CSR pops members in strictly ascending ID order — the
member array *is* an evaluation order, and truncating it at any point
still leaves a closed topological prefix of the cone.

Boundary bookkeeping matters for soundness: a member whose fanout row
leaves the window (because the level or size cut excluded a consumer)
is a *boundary output* — a value difference reaching it may still
propagate to a primary output the window cannot see, so the engine may
never refute or confirm from boundary behaviour alone.  Primary outputs
inside the window are *exact* outputs: a difference there is a real
observability witness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..ir.compiled import CompiledCircuit


@dataclass(frozen=True)
class WindowConfig:
    """Tuning knobs for window extraction and windowed classification.

    Attributes:
        max_levels: Cone depth kept beyond the seed net's level; gates
            further than this become boundary cut points.
        max_gates: Hard cap on window membership (cone truncated beyond).
        n_vectors: Packed random vectors for the shared simulation
            pre-filter (must be a positive multiple of 64).
        seed: Stimulus seed so engines are reproducible.
    """

    max_levels: int = 8
    max_gates: int = 48
    n_vectors: int = 512
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.max_levels < 1:
            raise ValueError("max_levels must be >= 1")
        if self.max_gates < 1:
            raise ValueError("max_gates must be >= 1")
        if self.n_vectors <= 0 or self.n_vectors % 64:
            raise ValueError("n_vectors must be a positive multiple of 64")


@dataclass(frozen=True)
class Window:
    """One extracted window (all arrays hold interned net IDs).

    ``gate_ids`` is the topologically sorted member set; ``output_ids``
    are the members whose value escapes the window (boundary cuts and
    primary outputs), ``po_ids`` the subset that are real primary
    outputs.  ``seed_escapes`` marks a seed with a consumer outside the
    window; ``cut`` is True when any escape route is not a primary
    output, i.e. the window under-approximates the cone.
    """

    seed_id: int
    gate_ids: np.ndarray
    side_input_ids: np.ndarray
    output_ids: np.ndarray
    po_ids: np.ndarray
    seed_escapes: bool
    seed_is_po: bool
    cut: bool

    @property
    def n_gates(self) -> int:
        return int(len(self.gate_ids))


def extract_window(
    compiled: CompiledCircuit,
    seed_id: int,
    config: Optional[WindowConfig] = None,
) -> Window:
    """Extract the cut TFO window of net ``seed_id``.

    The walk pops candidate gate IDs from a min-heap seeded with the
    net's direct consumers; every pushed ID exceeds the ID being popped
    (consumers are always numbered above their inputs), so pops are
    strictly ascending and the member list is already in topological
    evaluation order.  Gates beyond ``max_levels`` above the seed are
    cut (left out but remembered through their producers' fanout rows);
    the walk stops once ``max_gates`` members are collected.
    """
    config = config or WindowConfig()
    levels = compiled.levels
    level_cap = int(levels[seed_id]) + config.max_levels

    members: List[int] = []
    member_set = set()
    frontier = [int(g) for g in compiled.fanout_row(seed_id)]
    heapq.heapify(frontier)
    queued = set(frontier)
    while frontier and len(members) < config.max_gates:
        gid = heapq.heappop(frontier)
        if levels[gid] > level_cap:
            continue  # level cut: producer rows still reveal the escape
        members.append(gid)
        member_set.add(gid)
        for nxt in compiled.fanout_row(gid):
            nxt = int(nxt)
            if nxt not in queued:
                queued.add(nxt)
                heapq.heappush(frontier, nxt)

    po_set = set(int(i) for i in compiled.output_ids)
    outputs: List[int] = []
    pos: List[int] = []
    cut = False
    for gid in members:
        is_po = gid in po_set
        escapes = any(int(f) not in member_set for f in compiled.fanout_row(gid))
        if is_po:
            pos.append(gid)
        if is_po or escapes:
            outputs.append(gid)
        if escapes:
            cut = True
    seed_escapes = any(
        int(f) not in member_set for f in compiled.fanout_row(seed_id)
    )
    if seed_escapes:
        cut = True

    side: List[int] = []
    seen_side = set()
    for gid in members:
        for fid in compiled.fanin_row(gid):
            fid = int(fid)
            if fid != seed_id and fid not in member_set and fid not in seen_side:
                seen_side.add(fid)
                side.append(fid)

    return Window(
        seed_id=seed_id,
        gate_ids=np.asarray(members, dtype=np.int32),
        side_input_ids=np.asarray(sorted(side), dtype=np.int32),
        output_ids=np.asarray(outputs, dtype=np.int32),
        po_ids=np.asarray(pos, dtype=np.int32),
        seed_escapes=seed_escapes,
        seed_is_po=seed_id in po_set,
        cut=cut,
    )
