"""Windowed, simulation-guided ODC classification (see ARCHITECTURE.md).

Public surface:

* :class:`WindowConfig` / :class:`Window` / :func:`extract_window` —
  local TFO-window extraction over the compiled CSR adjacency.
* :class:`WindowedOdcEngine` — per-circuit candidate classifier with
  ``"windowed"`` and ``"global"`` strategies that agree bit-for-bit.
* :class:`OdcVerdict` / :class:`OdcStatus` / :class:`EngineStats` —
  result and accounting types.
* :func:`verify_witness` — simulation check of a REFUTED witness.
"""

from .engine import (
    STRATEGIES,
    EngineStats,
    OdcStatus,
    OdcVerdict,
    WindowedOdcEngine,
    verify_witness,
)
from .window import Window, WindowConfig, extract_window

__all__ = [
    "STRATEGIES",
    "EngineStats",
    "OdcStatus",
    "OdcVerdict",
    "Window",
    "WindowConfig",
    "WindowedOdcEngine",
    "extract_window",
    "verify_witness",
]
