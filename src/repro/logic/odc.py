"""Observability Don't Care analysis (paper §III.A, Eq. 1).

The fingerprinting method needs, per gate input, the *local* ODC set: the
assignments of the gate's other inputs under which that input cannot be
observed at the gate output.  For library kinds this is derived generically
from the kind's truth table, so adding a cell to the library automatically
yields its ODC behaviour (the paper's Table I is a special case).

For standard controlling-value gates the local ODC w.r.t. input ``x`` is
"some *other* input sits at the controlling value"; e.g. for a 2-input AND,
``ODC_x = y'`` exactly as the paper derives.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..cells import functions
from ..ir import compile_circuit
from ..netlist.circuit import Circuit, Gate
from .truthtable import TruthTable

#: Variable names used for kind-level (anonymous) ODC tables.
_PLACEHOLDER = tuple(f"in{i}" for i in range(12))


def local_odc(kind: str, n_inputs: int, position: int) -> TruthTable:
    """ODC set of ``kind``'s input ``position`` over placeholder variables.

    The returned table ranges over all ``n_inputs`` placeholder variables
    but never depends on ``in<position>`` itself (an ODC condition is a
    function of the other inputs only).
    """
    if not 0 <= position < n_inputs:
        raise ValueError(f"input position {position} out of range")
    table = TruthTable.from_kind(kind, _PLACEHOLDER[:n_inputs])
    return table.odc(_PLACEHOLDER[position])


def has_nonzero_odc(kind: str, n_inputs: int, position: Optional[int] = None) -> bool:
    """True when the ODC set is non-empty (for one input or any input)."""
    positions = range(n_inputs) if position is None else [position]
    return any(not local_odc(kind, n_inputs, p).is_contradiction() for p in positions)


def gate_input_odc(gate: Gate, position: int) -> TruthTable:
    """Local ODC of ``gate``'s input ``position`` over its real net names.

    Note: when a net feeds the gate on several pins the placeholder
    renaming would alias variables, so such gates are analyzed on the
    kind-level table instead; callers in the fingerprinting engine filter
    these out (they are rare and never useful locations).
    """
    if len(set(gate.inputs)) != len(gate.inputs):
        raise ValueError(f"gate {gate.name} has repeated input nets")
    anonymous = local_odc(gate.kind, gate.n_inputs, position)
    mapping = dict(zip(_PLACEHOLDER[: gate.n_inputs], gate.inputs))
    renamed = TruthTable(
        tuple(mapping[v] for v in anonymous.variables), anonymous.bits
    )
    return renamed


@dataclass(frozen=True)
class TriggerCondition:
    """How one gate input can activate the ODC of another input.

    Attributes:
        target_position: The input whose value becomes unobservable.
        trigger_position: The input whose value activates the ODC.
        trigger_value: The value of the trigger input that, by itself,
            guarantees the ODC condition (the gate's controlling value).
    """

    target_position: int
    trigger_position: int
    trigger_value: int


def single_input_triggers(gate: Gate) -> List[TriggerCondition]:
    """All (target, trigger) pairs where one input alone blocks another.

    For controlling-value kinds every ordered pair of distinct inputs
    qualifies with the controlling value as trigger value.  Kinds without a
    controlling value (XOR/XNOR/INV/BUF) yield none — their Boolean
    difference is a tautology, matching the paper's observation that such
    gates never create ODCs.
    """
    control = functions.controlling_value(gate.kind)
    if control is None or gate.n_inputs < 2:
        return []
    conditions = []
    for target in range(gate.n_inputs):
        for trigger in range(gate.n_inputs):
            if target != trigger:
                conditions.append(TriggerCondition(target, trigger, control))
    return conditions


def gate_creates_odc(gate: Gate) -> bool:
    """True when the gate has any input with a non-zero ODC set."""
    return functions.has_odc(gate.kind, gate.n_inputs)


@lru_cache(maxsize=None)
def _odc_positions(kind: str, n_inputs: int) -> Tuple[int, ...]:
    """Input positions of ``kind`` with non-empty local ODC sets.

    The answer depends only on the (kind, arity) pair — never on the
    instance — so the truth-table work is paid once per distinct cell
    shape across the whole process, not once per gate.
    """
    return tuple(
        p for p in range(n_inputs) if has_nonzero_odc(kind, n_inputs, p)
    )


def odc_summary(circuit: Circuit) -> Dict[str, List[int]]:
    """Map gate name -> input positions with non-empty local ODC sets.

    Iterates the compiled IR's topological gate order (one shared,
    version-cached compilation — not a fresh traversal per gate) and
    memoizes the per-(kind, arity) truth-table analysis, so a summary
    costs O(gates) dictionary work after the first call.
    """
    summary: Dict[str, List[int]] = {}
    for gate in compile_circuit(circuit).gates_in_order():
        positions = _odc_positions(gate.kind, gate.n_inputs)
        if positions:
            summary[gate.name] = list(positions)
    return summary


def odc_gate_table(library) -> Dict[str, bool]:
    """The library-wide ODC table (reproduces the role of paper Table I).

    Maps cell name -> whether the cell's inputs carry non-zero ODCs.
    """
    return {cell.name: cell.has_odc for cell in library}
