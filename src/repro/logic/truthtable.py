"""Dense truth tables over small variable sets.

A :class:`TruthTable` stores the function as an integer bitmask: bit ``r``
is the output under the assignment whose integer encoding is ``r``, where
variable ``i`` (in the table's variable order) contributes bit ``i`` of
``r``.  This representation supports exact Boolean reasoning — cofactors,
Boolean difference, tautology/satisfiability — for the local (per-gate and
per-cone) analyses the ODC fingerprinting method needs.  Sizes are bounded
by :data:`MAX_VARS` to keep the masks cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..cells import functions
from ..errors import ReproError

#: Largest supported variable count (2**MAX_VARS table rows).
MAX_VARS = 20


class TruthTableError(ReproError, ValueError):
    """Variable mismatch or size overflow in truth-table operations."""


def _full_mask(n_vars: int) -> int:
    return (1 << (1 << n_vars)) - 1


@dataclass(frozen=True)
class TruthTable:
    """An immutable Boolean function over an ordered variable tuple."""

    variables: Tuple[str, ...]
    bits: int

    def __post_init__(self) -> None:
        if len(self.variables) > MAX_VARS:
            raise TruthTableError(
                f"{len(self.variables)} variables exceed MAX_VARS={MAX_VARS}"
            )
        if len(set(self.variables)) != len(self.variables):
            raise TruthTableError("duplicate variables")
        if self.bits < 0 or self.bits > _full_mask(len(self.variables)):
            raise TruthTableError("bits out of range for variable count")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def constant(value: int, variables: Sequence[str] = ()) -> "TruthTable":
        """Constant 0/1 function over the given variables."""
        variables = tuple(variables)
        mask = _full_mask(len(variables))
        return TruthTable(variables, mask if value else 0)

    @staticmethod
    def variable(name: str, variables: Sequence[str]) -> "TruthTable":
        """Projection onto one variable of ``variables``."""
        variables = tuple(variables)
        index = variables.index(name)
        bits = 0
        for row in range(1 << len(variables)):
            if (row >> index) & 1:
                bits |= 1 << row
        return TruthTable(variables, bits)

    @staticmethod
    def from_kind(kind: str, variables: Sequence[str]) -> "TruthTable":
        """Truth table of a gate kind applied to ``variables`` in order."""
        variables = tuple(variables)
        return TruthTable(variables, functions.truth_table(kind, len(variables)))

    @staticmethod
    def from_rows(variables: Sequence[str], rows: Iterable[int]) -> "TruthTable":
        """Build from the set of on-set row indices."""
        variables = tuple(variables)
        bits = 0
        limit = 1 << len(variables)
        for row in rows:
            if not 0 <= row < limit:
                raise TruthTableError(f"row {row} out of range")
            bits |= 1 << row
        return TruthTable(variables, bits)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def n_vars(self) -> int:
        return len(self.variables)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Evaluate under a variable->bit assignment."""
        row = 0
        for index, var in enumerate(self.variables):
            if var not in assignment:
                raise TruthTableError(f"missing assignment for {var!r}")
            if assignment[var]:
                row |= 1 << index
        return (self.bits >> row) & 1

    def is_tautology(self) -> bool:
        """True when the function is constant 1."""
        return self.bits == _full_mask(self.n_vars)

    def is_contradiction(self) -> bool:
        """True when the function is constant 0."""
        return self.bits == 0

    def on_set_size(self) -> int:
        """Number of satisfying assignments."""
        return bin(self.bits).count("1")

    def on_set(self) -> List[Dict[str, int]]:
        """All satisfying assignments as variable->bit dicts."""
        result = []
        for row in range(1 << self.n_vars):
            if (self.bits >> row) & 1:
                result.append(
                    {v: (row >> i) & 1 for i, v in enumerate(self.variables)}
                )
        return result

    def depends_on(self, name: str) -> bool:
        """True when the function is sensitive to variable ``name``."""
        return not self.boolean_difference(name).is_contradiction()

    def support(self) -> List[str]:
        """Variables the function actually depends on."""
        return [v for v in self.variables if self.depends_on(v)]

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def _aligned(self, other: "TruthTable") -> Tuple["TruthTable", "TruthTable"]:
        if self.variables == other.variables:
            return self, other
        merged = list(self.variables)
        for var in other.variables:
            if var not in merged:
                merged.append(var)
        return self.extended(merged), other.extended(merged)

    def extended(self, variables: Sequence[str]) -> "TruthTable":
        """Re-express over a superset/reordering of the variable tuple."""
        variables = tuple(variables)
        for var in self.variables:
            if var not in variables:
                raise TruthTableError(f"extension drops variable {var!r}")
        if variables == self.variables:
            return self
        positions = [variables.index(v) for v in self.variables]
        bits = 0
        for row in range(1 << len(variables)):
            local = 0
            for i, pos in enumerate(positions):
                if (row >> pos) & 1:
                    local |= 1 << i
            if (self.bits >> local) & 1:
                bits |= 1 << row
        return TruthTable(variables, bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.variables, self.bits ^ _full_mask(self.n_vars))

    def __and__(self, other: "TruthTable") -> "TruthTable":
        a, b = self._aligned(other)
        return TruthTable(a.variables, a.bits & b.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        a, b = self._aligned(other)
        return TruthTable(a.variables, a.bits | b.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        a, b = self._aligned(other)
        return TruthTable(a.variables, a.bits ^ b.bits)

    def equivalent(self, other: "TruthTable") -> bool:
        """Semantic equality (over the union of supports)."""
        a, b = self._aligned(other)
        return a.bits == b.bits

    # ------------------------------------------------------------------ #
    # cofactors and Boolean difference
    # ------------------------------------------------------------------ #

    def cofactor(self, name: str, value: int) -> "TruthTable":
        """Shannon cofactor with variable ``name`` fixed to ``value``.

        The result keeps the full variable tuple (the fixed variable simply
        becomes irrelevant), which keeps downstream compositions simple.
        """
        index = self.variables.index(name)
        bits = 0
        for row in range(1 << self.n_vars):
            src = (row | (1 << index)) if value else (row & ~(1 << index))
            if (self.bits >> src) & 1:
                bits |= 1 << row
        return TruthTable(self.variables, bits)

    def boolean_difference(self, name: str) -> "TruthTable":
        """``dF/dx = F_x XOR F_x'`` — sensitivity of F to variable ``name``."""
        return self.cofactor(name, 1) ^ self.cofactor(name, 0)

    def odc(self, name: str) -> "TruthTable":
        """Observability Don't Care set w.r.t. ``name`` (paper Eq. 1).

        ``ODC_x = (dF/dx)'``: the assignments (of the remaining variables)
        under which the value of ``x`` cannot be observed at F.
        """
        return ~self.boolean_difference(name)

    def compose(self, name: str, inner: "TruthTable") -> "TruthTable":
        """Substitute function ``inner`` for variable ``name``.

        Classic function composition: ``F[x := g] = g & F_x | ~g & F_x'``.
        """
        f1, g = self.cofactor(name, 1)._aligned(inner)
        f0 = self.cofactor(name, 0).extended(f1.variables)
        return (g & f1) | (~g & f0)

    def __str__(self) -> str:
        rows = 1 << self.n_vars
        pattern = "".join(str((self.bits >> r) & 1) for r in range(rows))
        return f"TruthTable({','.join(self.variables)}: {pattern})"
