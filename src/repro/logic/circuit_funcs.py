"""Exact circuit functions as truth tables (small circuits only).

Computes, for every net of a circuit with at most
:data:`~repro.logic.truthtable.MAX_VARS` primary inputs, the global Boolean
function as a :class:`~repro.logic.truthtable.TruthTable` over the primary
inputs.  This powers exact equivalence checks in tests and the *global*
observability analysis used to validate the fingerprinting engine's local
ODC reasoning on sampled circuits.
"""

from __future__ import annotations

from typing import Dict, List

from ..cells import functions
from ..netlist.circuit import Circuit
from .truthtable import MAX_VARS, TruthTable, TruthTableError


def net_functions(circuit: Circuit) -> Dict[str, TruthTable]:
    """Truth table of every net over the circuit's primary inputs."""
    variables = tuple(circuit.inputs)
    if len(variables) > MAX_VARS:
        raise TruthTableError(
            f"{len(variables)} primary inputs exceed exact-analysis limit"
        )
    tables: Dict[str, TruthTable] = {
        name: TruthTable.variable(name, variables) for name in variables
    }
    for gate in circuit.topological_order():
        if gate.kind == "CONST0":
            tables[gate.name] = TruthTable.constant(0, variables)
            continue
        if gate.kind == "CONST1":
            tables[gate.name] = TruthTable.constant(1, variables)
            continue
        operands = [tables[n] for n in gate.inputs]
        tables[gate.name] = _apply(gate.kind, operands, variables)
    return tables


def _apply(kind: str, operands: List[TruthTable], variables) -> TruthTable:
    base = functions.base_operator(kind)
    if kind == "BUF":
        return operands[0]
    if kind == "INV":
        return ~operands[0]
    acc = operands[0]
    for table in operands[1:]:
        if base == "AND":
            acc = acc & table
        elif base == "OR":
            acc = acc | table
        else:  # XOR family
            acc = acc ^ table
    if functions.is_inverting(kind):
        acc = ~acc
    return acc


def output_functions(circuit: Circuit) -> Dict[str, TruthTable]:
    """Truth tables of the primary outputs only."""
    tables = net_functions(circuit)
    return {net: tables[net] for net in circuit.outputs}


def circuits_equivalent_exact(left: Circuit, right: Circuit) -> bool:
    """Exact combinational equivalence via truth tables.

    Requires matching input/output port names (order-insensitive) and at
    most :data:`MAX_VARS` inputs.
    """
    if set(left.inputs) != set(right.inputs):
        return False
    if list(left.outputs) != list(right.outputs):
        return False
    left_tables = output_functions(left)
    right_tables = output_functions(right)
    return all(
        left_tables[net].equivalent(right_tables[net]) for net in left.outputs
    )


def global_observability(circuit: Circuit, net: str) -> TruthTable:
    """Global observability of ``net``: OR over outputs of ``dF_o/d(net)``.

    The complement of this table is the *global* ODC set of the net — the
    primary-input assignments under which flipping ``net`` changes no
    primary output.  Computed by re-simulating the circuit symbolically
    with ``net`` replaced by a fresh free variable and differencing.
    """
    variables = tuple(circuit.inputs)
    if len(variables) >= MAX_VARS:
        raise TruthTableError("too many inputs for global observability")
    if not circuit.has_net(net):
        raise TruthTableError(f"unknown net {net!r}")
    extended = variables + ("__free__",)
    tables: Dict[str, TruthTable] = {
        name: TruthTable.variable(name, extended) for name in variables
    }
    free = TruthTable.variable("__free__", extended)
    if net in tables:
        tables[net] = free
    for gate in circuit.topological_order():
        if gate.name == net:
            tables[gate.name] = free
            continue
        if gate.kind == "CONST0":
            tables[gate.name] = TruthTable.constant(0, extended)
            continue
        if gate.kind == "CONST1":
            tables[gate.name] = TruthTable.constant(1, extended)
            continue
        operands = [tables[n] for n in gate.inputs]
        tables[gate.name] = _apply(gate.kind, operands, extended)
    sensitivity = TruthTable.constant(0, extended)
    for out in circuit.outputs:
        sensitivity = sensitivity | tables[out].boolean_difference("__free__")
    # The result no longer depends on the free variable; restrict to the
    # original input tuple by cofactoring it away.
    reduced = sensitivity.cofactor("__free__", 0)
    bits = 0
    for row in range(1 << len(variables)):
        if (reduced.bits >> row) & 1:
            bits |= 1 << row
    return TruthTable(variables, bits)


def global_odc(circuit: Circuit, net: str) -> TruthTable:
    """Global ODC set of ``net`` (complement of global observability)."""
    return ~global_observability(circuit, net)
