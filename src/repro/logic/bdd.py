"""A small reduced ordered binary decision diagram (ROBDD) package.

Canonical function representation used for medium-size exact equivalence
checking (beyond the truth-table variable limit) and don't-care reasoning.
Implements hash-consed nodes, the ``apply`` algorithm with memoization,
negation, restriction (cofactors), existential quantification, satisfy
counts and circuit compilation.

This substitutes for the BDD machinery inside industrial tools (SIS/ABC)
that the paper leans on implicitly when it asserts functional equivalence
of fingerprinted copies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cells import functions
from ..netlist.circuit import Circuit
from ..errors import ReproError


class BddError(ReproError, ValueError):
    """Raised on ordering violations or capacity overflows."""


class Bdd:
    """A BDD manager with a fixed variable order.

    Nodes are triples ``(level, low, high)`` interned in a unique table and
    referenced by integer ids; 0 and 1 are the terminal nodes.
    """

    ZERO = 0
    ONE = 1

    def __init__(self, variables: Sequence[str], max_nodes: int = 2_000_000) -> None:
        if len(set(variables)) != len(variables):
            raise BddError("duplicate variables in order")
        self.variables: Tuple[str, ...] = tuple(variables)
        self._level: Dict[str, int] = {v: i for i, v in enumerate(self.variables)}
        self.max_nodes = max_nodes
        # node id -> (level, low, high); terminals get sentinel level.
        self._nodes: List[Tuple[int, int, int]] = [
            (len(self.variables), 0, 0),
            (len(self.variables), 1, 1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # node plumbing
    # ------------------------------------------------------------------ #

    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if len(self._nodes) >= self.max_nodes:
            raise BddError(f"BDD exceeded {self.max_nodes} nodes")
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def level_of(self, node: int) -> int:
        return self._nodes[node][0]

    def var(self, name: str) -> int:
        """BDD for a single variable."""
        try:
            level = self._level[name]
        except KeyError:
            raise BddError(f"variable {name!r} not in order")
        return self._make(level, self.ZERO, self.ONE)

    def constant(self, value: int) -> int:
        return self.ONE if value else self.ZERO

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def not_(self, node: int) -> int:
        """Negation (computed, not complemented-edge).

        Iterative with an explicit stack: BDD depth equals the variable
        count, so recursion would overflow on wide circuits (a 5,000-input
        chain must work, not raise ``RecursionError``).
        """

        def negated(n: int) -> Optional[int]:
            if n == self.ZERO:
                return self.ONE
            if n == self.ONE:
                return self.ZERO
            return self._not_cache.get(n)

        done = negated(node)
        if done is not None:
            return done
        stack = [node]
        while stack:
            current = stack[-1]
            if negated(current) is not None:
                stack.pop()
                continue
            level, low, high = self._nodes[current]
            neg_low, neg_high = negated(low), negated(high)
            if neg_low is None:
                stack.append(low)
                continue
            if neg_high is None:
                stack.append(high)
                continue
            self._not_cache[current] = self._make(level, neg_low, neg_high)
            stack.pop()
        return self._not_cache[node]

    def _apply_shortcut(self, op: str, table, a: int, b: int) -> Optional[int]:
        """Terminal/absorbing-operand result, or ``None`` when undecided."""
        if a <= 1 and b <= 1:
            return table(a, b)
        if op == "and":
            if a == self.ZERO or b == self.ZERO:
                return self.ZERO
            if a == self.ONE:
                return b
            if b == self.ONE:
                return a
        elif op == "or":
            if a == self.ONE or b == self.ONE:
                return self.ONE
            if a == self.ZERO:
                return b
            if b == self.ZERO:
                return a
        return None

    def _apply(self, op: str, table: Callable[[int, int], int], a: int, b: int) -> int:
        """Memoized apply, iterative (depth is bounded only by ``n_vars``)."""
        cache = self._apply_cache

        def resolved(x: int, y: int) -> Optional[int]:
            shortcut = self._apply_shortcut(op, table, x, y)
            if shortcut is not None:
                return shortcut
            return cache.get((op, x, y))

        done = resolved(a, b)
        if done is not None:
            return done
        stack = [(a, b)]
        while stack:
            pair = stack[-1]
            if resolved(*pair) is not None:
                stack.pop()
                continue
            pa, pb = pair
            la, lb = self.level_of(pa), self.level_of(pb)
            level = min(la, lb)
            a_low, a_high = (
                (self._nodes[pa][1], self._nodes[pa][2]) if la == level else (pa, pa)
            )
            b_low, b_high = (
                (self._nodes[pb][1], self._nodes[pb][2]) if lb == level else (pb, pb)
            )
            low = resolved(a_low, b_low)
            if low is None:
                stack.append((a_low, b_low))
                continue
            high = resolved(a_high, b_high)
            if high is None:
                stack.append((a_high, b_high))
                continue
            cache[(op, pa, pb)] = self._make(level, low, high)
            stack.pop()
        result = resolved(a, b)
        assert result is not None
        return result

    def and_(self, a: int, b: int) -> int:
        return self._apply("and", lambda x, y: x & y, a, b)

    def or_(self, a: int, b: int) -> int:
        return self._apply("or", lambda x, y: x | y, a, b)

    def xor(self, a: int, b: int) -> int:
        return self._apply("xor", lambda x, y: x ^ y, a, b)

    def apply_many(self, op: str, nodes: Sequence[int]) -> int:
        """Fold ``op`` in {'and','or','xor'} over a node sequence."""
        fold = {"and": self.and_, "or": self.or_, "xor": self.xor}[op]
        acc = nodes[0]
        for node in nodes[1:]:
            acc = fold(acc, node)
        return acc

    def restrict(self, node: int, name: str, value: int) -> int:
        """Cofactor: fix variable ``name`` to ``value``.

        Iterative: restriction depth equals variable count.  Unknown
        variables raise :class:`BddError`, not a raw ``KeyError``.
        """
        try:
            target = self._level[name]
        except KeyError:
            raise BddError(f"variable {name!r} not in order")

        cache: Dict[int, int] = {}

        def resolved(n: int) -> Optional[int]:
            if n <= 1 or self.level_of(n) > target:
                return n
            return cache.get(n)

        done = resolved(node)
        if done is not None:
            return done
        stack = [node]
        while stack:
            current = stack[-1]
            if resolved(current) is not None:
                stack.pop()
                continue
            level, low, high = self._nodes[current]
            if level == target:
                cache[current] = high if value else low
                stack.pop()
                continue
            r_low = resolved(low)
            if r_low is None:
                stack.append(low)
                continue
            r_high = resolved(high)
            if r_high is None:
                stack.append(high)
                continue
            cache[current] = self._make(level, r_low, r_high)
            stack.pop()
        return cache[node]

    def exists(self, node: int, name: str) -> int:
        """Existential quantification over one variable."""
        return self.or_(self.restrict(node, name, 0), self.restrict(node, name, 1))

    def boolean_difference(self, node: int, name: str) -> int:
        """``dF/dx`` as a BDD."""
        return self.xor(self.restrict(node, name, 0), self.restrict(node, name, 1))

    def sat_count(self, node: int) -> int:
        """Number of satisfying assignments over the full variable order.

        Iterative post-order: the cache stores each node's count over the
        variables at positions ``>= level_of(node)``; shifting accounts for
        variables skipped between a node and its children.
        """
        n_vars = len(self.variables)
        if node == self.ZERO:
            return 0
        if node == self.ONE:
            return 1 << n_vars
        cache: Dict[int, int] = {}
        stack = [node]
        while stack:
            current = stack[-1]
            if current in cache:
                stack.pop()
                continue
            level, low, high = self._nodes[current]
            missing = [c for c in (low, high) if c > 1 and c not in cache]
            if missing:
                stack.extend(missing)
                continue

            def branch_count(child: int) -> int:
                # Assignments of variables at positions >= level + 1.
                if child == self.ZERO:
                    return 0
                if child == self.ONE:
                    return 1 << (n_vars - (level + 1))
                return cache[child] << (self.level_of(child) - (level + 1))

            cache[current] = branch_count(low) + branch_count(high)
            stack.pop()
        return cache[node] << self.level_of(node)

    def pick_assignment(self, node: int) -> Optional[Dict[str, int]]:
        """One satisfying assignment, or ``None`` when unsatisfiable."""
        if node == self.ZERO:
            return None
        assignment: Dict[str, int] = {}
        current = node
        while current != self.ONE:
            level, low, high = self._nodes[current]
            name = self.variables[level]
            if low != self.ZERO:
                assignment[name] = 0
                current = low
            else:
                assignment[name] = 1
                current = high
        for name in self.variables:
            assignment.setdefault(name, 0)
        return assignment

    def evaluate(self, node: int, assignment: Dict[str, int]) -> int:
        """Evaluate the function at a full assignment."""
        current = node
        while current > 1:
            level, low, high = self._nodes[current]
            current = high if assignment[self.variables[level]] else low
        return current


def build_output_bdds(circuit: Circuit, manager: Optional[Bdd] = None) -> Tuple[Bdd, Dict[str, int]]:
    """Compile a circuit's primary outputs into BDDs.

    Returns the manager and a map ``output net -> BDD node``.  The default
    variable order is the circuit's primary-input order.
    """
    if manager is None:
        manager = Bdd(circuit.inputs)
    nodes: Dict[str, int] = {name: manager.var(name) for name in circuit.inputs}
    for gate in circuit.topological_order():
        if gate.kind == "CONST0":
            nodes[gate.name] = manager.ZERO
            continue
        if gate.kind == "CONST1":
            nodes[gate.name] = manager.ONE
            continue
        operands = [nodes[n] for n in gate.inputs]
        if gate.kind == "BUF":
            nodes[gate.name] = operands[0]
            continue
        if gate.kind == "INV":
            nodes[gate.name] = manager.not_(operands[0])
            continue
        base = functions.base_operator(gate.kind)
        op = {"AND": "and", "OR": "or", "XOR": "xor"}[base]
        value = manager.apply_many(op, operands)
        if functions.is_inverting(gate.kind):
            value = manager.not_(value)
        nodes[gate.name] = value
    return manager, {net: nodes[net] for net in circuit.outputs}


def bdd_equivalent(left: Circuit, right: Circuit, max_nodes: int = 2_000_000) -> bool:
    """Exact equivalence of two circuits via a shared BDD manager."""
    if set(left.inputs) != set(right.inputs):
        return False
    if list(left.outputs) != list(right.outputs):
        return False
    manager = Bdd(left.inputs, max_nodes=max_nodes)
    _, left_nodes = build_output_bdds(left, manager)
    _, right_nodes = build_output_bdds(right, manager)
    return all(left_nodes[o] == right_nodes[o] for o in left.outputs)
