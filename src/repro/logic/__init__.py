"""Boolean reasoning: truth tables, ODC analysis, BDDs."""

from .truthtable import MAX_VARS, TruthTable, TruthTableError
from .odc import (
    TriggerCondition,
    gate_creates_odc,
    gate_input_odc,
    has_nonzero_odc,
    local_odc,
    odc_gate_table,
    odc_summary,
    single_input_triggers,
)
from .circuit_funcs import (
    circuits_equivalent_exact,
    global_observability,
    global_odc,
    net_functions,
    output_functions,
)
from .bdd import Bdd, BddError, bdd_equivalent, build_output_bdds

__all__ = [
    "MAX_VARS",
    "TruthTable",
    "TruthTableError",
    "TriggerCondition",
    "gate_creates_odc",
    "gate_input_odc",
    "has_nonzero_odc",
    "local_odc",
    "odc_gate_table",
    "odc_summary",
    "single_input_triggers",
    "circuits_equivalent_exact",
    "global_observability",
    "global_odc",
    "net_functions",
    "output_functions",
    "Bdd",
    "BddError",
    "bdd_equivalent",
    "build_output_bdds",
]
