"""Deterministic RNG seed derivation shared by campaign-style harnesses.

Both fault-injection campaigns and the persistent campaign engine need a
*stable* per-trial random stream: the same ``(base seed, design, injector,
trial)`` coordinates must produce the same randomness across processes,
Python versions, and resumed runs, or an interrupted campaign could not be
re-entered deterministically.

The scheme is the one :mod:`repro.faultinject.campaign` has used since
PR 1 — seed :class:`random.Random` with the ``repr`` of the coordinate
tuple — extracted here so every harness derives seeds the same way instead
of re-implementing the keying inline.  ``repr`` of a tuple of ints and
strs is stable across CPython versions, and :class:`random.Random` hashes
string seeds with its own version-stable algorithm (not ``hash()``, which
is salted), so derived streams are reproducible everywhere.

The exact byte-level keying is pinned by ``tests/test_seeds.py``; changing
it would silently re-randomize every recorded campaign, so treat the key
format as a compatibility contract.
"""

from __future__ import annotations

import random
from typing import Union

Label = Union[int, str]


def derive_seed(seed: int, *labels: Label) -> str:
    """The stable seed key for one (campaign, coordinate...) point.

    Returns the string used to seed :class:`random.Random` — the ``repr``
    of ``(seed, *labels)``.  Kept as a string (not an int digest) for
    byte-compatibility with the historical inline scheme, so campaigns
    recorded before this helper existed replay identically.
    """
    if not labels:
        return (seed,).__repr__()
    return (seed, *labels).__repr__()


def derive_rng(seed: int, *labels: Label) -> random.Random:
    """A :class:`random.Random` seeded at the derived coordinate.

    ``derive_rng(0, "c17", "StuckAtNet", 2)`` is the per-trial stream for
    trial 2 of the ``StuckAtNet`` injector on design ``c17`` under
    campaign seed 0 — independent of execution order, process, and of
    every other coordinate's stream.
    """
    return random.Random(derive_seed(seed, *labels))


__all__ = ["derive_rng", "derive_seed"]
