"""The default generic standard-cell library.

Calibrated so that mapped benchmark circuits land in the same magnitude range
as the paper's Table II numbers (areas of ~1.6e3 units per gate, critical
paths of a few ns, power in the hundreds-to-thousands range).  The exact
values are not the point — the paper reports *relative* overheads — but a
realistic spread between cell sizes is, because the fingerprinting overhead
derives from widening cells and adding inverters.

The library follows the MCNC genlib conventions loosely: NAND/NOR are the
cheap workhorses, AND/OR pay an extra inversion, XOR/XNOR are the largest
two-input cells, and every extra input adds area, capacitance and delay.
"""

from __future__ import annotations

from .library import Cell, CellLibrary, build_library

#: Area of one grid unit; all cell areas are multiples of this.
_UNIT = 464.0


def _cell(
    name: str,
    kind: str,
    n_inputs: int,
    units: float,
    tpd: float,
    load: float = 0.055,
) -> Cell:
    return Cell(
        name=name,
        kind=kind,
        n_inputs=n_inputs,
        area=units * _UNIT,
        intrinsic_delay=tpd,
        load_delay=load,
        input_cap=1.0 + 0.12 * (n_inputs - 1),
        switch_energy=0.55 * units + 0.35 * n_inputs,
        leakage=0.01 * units,
    )


def generic_cells() -> list:
    """The cell set of the generic library."""
    cells = [
        _cell("INV", "INV", 1, 2.0, 0.12),
        _cell("BUF", "BUF", 1, 3.0, 0.18),
        _cell("NAND2", "NAND", 2, 3.0, 0.18),
        _cell("NAND3", "NAND", 3, 4.0, 0.24),
        _cell("NAND4", "NAND", 4, 5.0, 0.31),
        _cell("NAND5", "NAND", 5, 6.0, 0.39),
        _cell("NOR2", "NOR", 2, 3.0, 0.20),
        _cell("NOR3", "NOR", 3, 4.0, 0.28),
        _cell("NOR4", "NOR", 4, 5.0, 0.37),
        _cell("NOR5", "NOR", 5, 6.0, 0.47),
        _cell("AND2", "AND", 2, 4.0, 0.23),
        _cell("AND3", "AND", 3, 5.0, 0.29),
        _cell("AND4", "AND", 4, 6.0, 0.36),
        _cell("AND5", "AND", 5, 7.0, 0.44),
        _cell("OR2", "OR", 2, 4.0, 0.25),
        _cell("OR3", "OR", 3, 5.0, 0.33),
        _cell("OR4", "OR", 4, 6.0, 0.42),
        _cell("OR5", "OR", 5, 7.0, 0.52),
        _cell("XOR2", "XOR", 2, 5.0, 0.30),
        _cell("XOR3", "XOR", 3, 7.0, 0.42),
        _cell("XNOR2", "XNOR", 2, 5.0, 0.30),
        _cell("XNOR3", "XNOR", 3, 7.0, 0.42),
        _cell("ZERO", "CONST0", 0, 1.0, 0.0),
        _cell("ONE", "CONST1", 0, 1.0, 0.0),
    ]
    return cells


def generic_library() -> CellLibrary:
    """Build a fresh instance of the default library."""
    return build_library("generic45", generic_cells())


#: Shared read-only default library instance.
GENERIC_LIB = generic_library()
