"""Gate semantics and technology cell libraries."""

from . import functions
from .functions import (
    ALL_KINDS,
    CONST_KINDS,
    MULTI_KINDS,
    UNARY_KINDS,
    UnknownGateKindError,
    base_operator,
    controlled_output,
    controlling_value,
    evaluate,
    evaluate_bits,
    has_odc,
    identity_value,
    is_inverting,
    truth_table,
)
from .generic_lib import GENERIC_LIB, generic_cells, generic_library
from .library import Cell, CellLibrary, CellNotFoundError, build_library

__all__ = [
    "ALL_KINDS",
    "CONST_KINDS",
    "MULTI_KINDS",
    "UNARY_KINDS",
    "UnknownGateKindError",
    "base_operator",
    "controlled_output",
    "controlling_value",
    "evaluate",
    "evaluate_bits",
    "has_odc",
    "identity_value",
    "is_inverting",
    "truth_table",
    "GENERIC_LIB",
    "generic_cells",
    "generic_library",
    "Cell",
    "CellLibrary",
    "CellNotFoundError",
    "build_library",
    "functions",
]
