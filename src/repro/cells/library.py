"""Technology cell library: physical attributes attached to gate kinds.

A :class:`Cell` binds a gate *kind* (Boolean behaviour, see
:mod:`repro.cells.functions`) at a fixed arity to physical data used by the
area, timing and power models: cell area, intrinsic propagation delay, a
load-dependent delay coefficient, input capacitance and switching energy.

The :class:`CellLibrary` is the lookup service used by the technology mapper
(choosing cells for decomposed logic) and by the fingerprinting engine
(deciding whether a gate can be *widened* by one input to absorb an ODC
trigger signal — the paper's feasibility "lookup table").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from . import functions
from ..errors import ReproError


class CellNotFoundError(ReproError, KeyError):
    """Raised when no cell matches a requested (kind, arity) query."""


@dataclass(frozen=True)
class Cell:
    """One standard cell.

    Attributes:
        name: Unique cell name, e.g. ``"NAND3"``.
        kind: Gate kind string defining the Boolean function.
        n_inputs: Number of inputs this cell provides.
        area: Cell area in library area units (lambda^2 style).
        intrinsic_delay: Input-to-output delay at zero load, in ns.
        load_delay: Additional delay per unit of fanout load, in ns.
        input_cap: Capacitive load this cell presents to each driver.
        switch_energy: Energy per output transition (arbitrary energy units).
        leakage: Static power (arbitrary power units).
    """

    name: str
    kind: str
    n_inputs: int
    area: float
    intrinsic_delay: float
    load_delay: float
    input_cap: float = 1.0
    switch_energy: float = 1.0
    leakage: float = 0.0

    def __post_init__(self) -> None:
        functions.validate_arity(self.kind, self.n_inputs)
        if self.area < 0 or self.intrinsic_delay < 0 or self.load_delay < 0:
            raise ValueError(f"cell {self.name}: physical attributes must be >= 0")

    @property
    def has_odc(self) -> bool:
        """True when this cell's inputs have non-empty ODC sets (Eq. 1)."""
        return functions.has_odc(self.kind, self.n_inputs)


@dataclass
class CellLibrary:
    """A named collection of cells with kind/arity indexing."""

    name: str
    _cells: Dict[str, Cell] = field(default_factory=dict)
    _by_signature: Dict[Tuple[str, int], Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> None:
        """Register ``cell``; kind+arity signatures must be unique."""
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell name {cell.name!r}")
        signature = (cell.kind, cell.n_inputs)
        if signature in self._by_signature:
            raise ValueError(f"duplicate cell signature {signature!r}")
        self._cells[cell.name] = cell
        self._by_signature[signature] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> Cell:
        """Return the cell named ``name``."""
        try:
            return self._cells[name]
        except KeyError:
            raise CellNotFoundError(f"no cell named {name!r} in library {self.name}")

    def find(self, kind: str, n_inputs: int) -> Cell:
        """Return the cell implementing ``kind`` at exactly ``n_inputs``."""
        try:
            return self._by_signature[(kind, n_inputs)]
        except KeyError:
            raise CellNotFoundError(
                f"library {self.name} has no {n_inputs}-input {kind} cell"
            )

    def try_find(self, kind: str, n_inputs: int) -> Optional[Cell]:
        """Like :meth:`find` but returns ``None`` instead of raising."""
        return self._by_signature.get((kind, n_inputs))

    def kinds(self) -> List[str]:
        """All gate kinds with at least one cell, sorted."""
        return sorted({cell.kind for cell in self._cells.values()})

    def max_arity(self, kind: str) -> int:
        """Largest input count available for ``kind`` (0 when absent)."""
        arities = [c.n_inputs for c in self._cells.values() if c.kind == kind]
        return max(arities) if arities else 0

    def arities(self, kind: str) -> List[int]:
        """Sorted list of input counts available for ``kind``."""
        return sorted(c.n_inputs for c in self._cells.values() if c.kind == kind)

    def widened(self, cell: Cell, extra: int = 1) -> Optional[Cell]:
        """Return the same-kind cell with ``extra`` more inputs, if any.

        This is the feasibility query of the paper's modification lookup
        table: adding an ODC trigger literal to a gate requires a library
        cell of the same kind with one (or two, for the Fig. 5 pair reroute)
        more inputs.
        """
        return self.try_find(cell.kind, cell.n_inputs + extra)

    def inverter_widenings(self) -> List[Cell]:
        """Cells usable to widen an inverter by one input.

        ``INV(a) == NAND2(a, L)`` when the added literal ``L`` is 1, and
        ``INV(a) == NOR2(a, L)`` when ``L`` is 0; both absorb an ODC trigger
        into a single-input gate (Definition 1, criterion 3).
        """
        options = []
        for kind in ("NAND", "NOR"):
            cell = self.try_find(kind, 2)
            if cell is not None:
                options.append(cell)
        return options

    def odc_cells(self) -> List[Cell]:
        """Cells whose inputs have non-zero ODC conditions (paper Table I)."""
        return [cell for cell in self._cells.values() if cell.has_odc]

    def summary(self) -> str:
        """Human-readable one-line-per-cell summary."""
        lines = [f"library {self.name}: {len(self)} cells"]
        for cell in sorted(self._cells.values(), key=lambda c: (c.kind, c.n_inputs)):
            lines.append(
                f"  {cell.name:<8} kind={cell.kind:<5} inputs={cell.n_inputs} "
                f"area={cell.area:<8g} tpd={cell.intrinsic_delay:g}+{cell.load_delay:g}/fo"
            )
        return "\n".join(lines)


def build_library(name: str, cells: Iterable[Cell]) -> CellLibrary:
    """Construct a :class:`CellLibrary` from an iterable of cells."""
    library = CellLibrary(name)
    for cell in cells:
        library.add(cell)
    return library
