"""Boolean semantics of the primitive gate kinds used throughout the library.

Every gate in a :class:`~repro.cells.library.CellLibrary` refers to one of the
*kinds* defined here ("AND", "NOR", "INV", ...).  A kind fixes the Boolean
function for any arity it supports; the cell merely adds physical attributes
(area, delay, power).

The functions operate on plain Python ints *or* numpy integer arrays used as
bit-parallel words, which is what the logic simulator feeds them.  All
word-level operations are masked by callers; here we only combine words.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np
from ..errors import ReproError

Word = Union[int, np.ndarray]

#: Gate kinds with a fixed single-input arity.
UNARY_KINDS = ("INV", "BUF")

#: Gate kinds that accept two or more inputs.
MULTI_KINDS = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR")

#: Constant generators (zero inputs).
CONST_KINDS = ("CONST0", "CONST1")

ALL_KINDS = UNARY_KINDS + MULTI_KINDS + CONST_KINDS


class UnknownGateKindError(ReproError, ValueError):
    """Raised when a gate kind string is not one of :data:`ALL_KINDS`."""


def _require_kind(kind: str) -> None:
    if kind not in ALL_KINDS:
        raise UnknownGateKindError(f"unknown gate kind {kind!r}")


def arity_range(kind: str) -> tuple:
    """Return the ``(min_inputs, max_inputs)`` a kind supports semantically.

    The physical library may restrict arity further; this is the *logical*
    range.  ``max_inputs`` is ``None`` for unbounded kinds.
    """
    _require_kind(kind)
    if kind in CONST_KINDS:
        return (0, 0)
    if kind in UNARY_KINDS:
        return (1, 1)
    return (2, None)


def validate_arity(kind: str, n_inputs: int) -> None:
    """Raise ``ValueError`` when ``n_inputs`` is not legal for ``kind``."""
    lo, hi = arity_range(kind)
    if n_inputs < lo or (hi is not None and n_inputs > hi):
        raise ValueError(f"gate kind {kind} cannot take {n_inputs} inputs")


def evaluate(kind: str, inputs: Sequence[Word]) -> Word:
    """Evaluate ``kind`` over bitwise words (ints or numpy arrays).

    Inverting kinds return the bitwise complement, so integer callers must
    mask the result to their word width; the simulator does this once per
    gate evaluation.
    """
    _require_kind(kind)
    validate_arity(kind, len(inputs))
    if kind == "CONST0":
        return 0
    if kind == "CONST1":
        return ~0
    if kind == "BUF":
        return inputs[0]
    if kind == "INV":
        return ~inputs[0]
    acc = inputs[0]
    if kind in ("AND", "NAND"):
        for word in inputs[1:]:
            acc = acc & word
        return ~acc if kind == "NAND" else acc
    if kind in ("OR", "NOR"):
        for word in inputs[1:]:
            acc = acc | word
        return ~acc if kind == "NOR" else acc
    # XOR / XNOR
    for word in inputs[1:]:
        acc = acc ^ word
    return ~acc if kind == "XNOR" else acc


def evaluate_bits(kind: str, bits: Sequence[int]) -> int:
    """Evaluate ``kind`` over single 0/1 bits and return 0 or 1."""
    return evaluate(kind, list(bits)) & 1


def truth_table(kind: str, n_inputs: int) -> int:
    """Return the truth table of ``kind`` at ``n_inputs`` as a bitmask.

    Bit ``r`` of the result is the output for the input assignment whose
    integer encoding is ``r`` (input ``i`` holds bit ``i`` of ``r``).
    """
    validate_arity(kind, n_inputs)
    table = 0
    for row in range(1 << n_inputs):
        bits = [(row >> i) & 1 for i in range(n_inputs)]
        if evaluate_bits(kind, bits) if n_inputs else evaluate(kind, []) & 1:
            table |= 1 << row
    return table


#: Input value that forces the gate output irrespective of other inputs,
#: or ``None`` when the kind has no controlling value (XOR family, buffers).
_CONTROLLING: Dict[str, Optional[int]] = {
    "AND": 0,
    "NAND": 0,
    "OR": 1,
    "NOR": 1,
    "XOR": None,
    "XNOR": None,
    "INV": None,
    "BUF": None,
    "CONST0": None,
    "CONST1": None,
}

#: Output value produced when some input is at the controlling value.
_CONTROLLED_OUTPUT: Dict[str, Optional[int]] = {
    "AND": 0,
    "NAND": 1,
    "OR": 1,
    "NOR": 0,
}

#: Input value under which the gate output is independent of that input
#: (the identity element of the gate's operator).
_IDENTITY: Dict[str, Optional[int]] = {
    "AND": 1,
    "NAND": 1,
    "OR": 0,
    "NOR": 0,
    "XOR": 0,
    "XNOR": 0,
    "INV": None,
    "BUF": None,
    "CONST0": None,
    "CONST1": None,
}

_INVERTING = frozenset(("INV", "NAND", "NOR", "XNOR"))


def controlling_value(kind: str) -> Optional[int]:
    """Input value that fixes the output regardless of the other inputs."""
    _require_kind(kind)
    return _CONTROLLING[kind]


def controlled_output(kind: str) -> Optional[int]:
    """Output value when any input sits at the controlling value."""
    _require_kind(kind)
    return _CONTROLLED_OUTPUT.get(kind)


def identity_value(kind: str) -> Optional[int]:
    """Input value that never affects the output (operator identity)."""
    _require_kind(kind)
    return _IDENTITY[kind]


def is_inverting(kind: str) -> bool:
    """True when the kind complements its operator's natural output."""
    _require_kind(kind)
    return kind in _INVERTING


def has_odc(kind: str, n_inputs: int) -> bool:
    """True when the kind produces a non-zero ODC for its inputs (Eq. 1).

    A gate input has a non-empty Observability Don't Care set exactly when
    the gate's Boolean difference w.r.t. that input is not a tautology.
    For the standard kinds this reduces to having a controlling value: AND,
    OR, NAND and NOR gates with two or more inputs create ODCs, while XOR,
    XNOR, INV and BUF never do (their outputs are always sensitive to every
    input).
    """
    _require_kind(kind)
    return controlling_value(kind) is not None and n_inputs >= 2


def base_operator(kind: str) -> Optional[str]:
    """Return the non-inverting operator underlying ``kind``.

    ``NAND -> AND``, ``NOR -> OR``, ``XNOR -> XOR``; non-inverting kinds map
    to themselves and unary/constant kinds to ``None``.
    """
    _require_kind(kind)
    mapping = {
        "AND": "AND",
        "NAND": "AND",
        "OR": "OR",
        "NOR": "OR",
        "XOR": "XOR",
        "XNOR": "XOR",
    }
    return mapping.get(kind)
