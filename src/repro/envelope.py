"""The unified result envelope shared by the CLI and the service.

Every surface of the system answers in one JSON shape::

    {
      "tool": "repro-fp",
      "version": "<package version>",
      "command": "<subcommand or service command>",
      "telemetry": {"spans": ..., "metrics": ...},
      "cache": {"hits": ..., "misses": ..., ...},   # when a store is active
      "result": {...}
    }

The CLI has emitted the first five keys since PR 4; this module promotes
the construction out of :mod:`repro.cli` so the HTTP service
(:mod:`repro.service`) speaks byte-for-byte the same envelope, and adds
the ``cache`` section: the active artifact store's hit/miss counters,
either cumulative (:func:`cache_section`) or as a before/after delta
scoped to one command (:func:`cache_delta` — what the service reports
per job, so a client can see that its *own* submission was served warm).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Artifact kinds whose warm/cold state the envelope summarizes.
_KINDS = ("ir", "cnf", "catalog", "session")


def cache_section(snapshot: Dict[str, int]) -> Dict[str, Any]:
    """Shape one store counter snapshot into the envelope ``cache`` block.

    Adds a ``warm`` sub-dict: per artifact kind, ``True`` when the window
    covered by ``snapshot`` recomputed nothing of that kind (zero misses)
    while the run as a whole was served from the store (at least one hit).
    Zero lookups of a kind still count as warm — on a fully-warm
    resubmission the cached session/catalog short-circuit the producers,
    so e.g. ``encode_circuit`` is never reached and the ``cnf`` kind sees
    no traffic at all.  A warm resubmission therefore shows
    ``warm.ir/cnf/catalog/session`` all true, which is what the CI smoke
    and the store benchmark assert.
    """
    hits = snapshot.get("hit.memory", 0) + snapshot.get("hit.disk", 0)
    misses = snapshot.get("miss", 0)
    warm = {}
    for kind in _KINDS:
        warm[kind] = hits > 0 and snapshot.get(f"miss.{kind}", 0) == 0
    section: Dict[str, Any] = {"hits": hits, "misses": misses, "warm": warm}
    section["counters"] = {
        key: value for key, value in sorted(snapshot.items()) if value
    }
    return section


def cache_delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, Any]:
    """``cache_section`` over the counter growth between two snapshots."""
    delta = {
        key: after.get(key, 0) - before.get(key, 0)
        for key in set(before) | set(after)
        if key != "entries"
    }
    delta = {key: value for key, value in delta.items() if value > 0}
    delta["entries"] = after.get("entries", 0)
    return cache_section(delta)


def active_cache_section() -> Optional[Dict[str, Any]]:
    """``cache`` block of the process's active store, or ``None``."""
    from .store.core import active_store

    store = active_store()
    if store is None:
        return None
    return cache_section(store.cache_snapshot())


def build_envelope(
    command: str,
    result: Dict[str, Any],
    telemetry_snapshot: Dict[str, Any],
    cache: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The envelope as a dict (key order is part of the shape)."""
    from . import __version__

    payload: Dict[str, Any] = {
        "tool": "repro-fp",
        "version": __version__,
        "command": command,
        "telemetry": telemetry_snapshot,
    }
    if cache is not None:
        payload["cache"] = cache
    payload["result"] = result
    return payload


def render_envelope(
    command: str,
    result: Dict[str, Any],
    telemetry_snapshot: Dict[str, Any],
    cache: Optional[Dict[str, Any]] = None,
) -> str:
    """The envelope serialized exactly as the CLI writes it."""
    return json.dumps(
        build_envelope(command, result, telemetry_snapshot, cache),
        indent=2,
        sort_keys=False,
        default=str,
    )


__all__ = [
    "active_cache_section",
    "build_envelope",
    "cache_delta",
    "cache_section",
    "render_envelope",
]
