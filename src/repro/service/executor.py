"""Multi-process execution backend for the fingerprinting service.

PR 7 ran every service job on a single worker thread: CPU-bound jobs
from different tenants queued behind each other, and the only
parallelism was *inside* a job.  :class:`JobExecutor` replaces that
thread with a :class:`~concurrent.futures.ProcessPoolExecutor` of N
worker processes, so concurrent submissions overlap on multi-core
hosts.

Worker-process contract (mirrors ``flows/batch._init_worker``):

* the initializer clears fork-inherited tracer/registry state, then
  re-enables telemetry with the parent's flags, so each worker's span
  trees and metric snapshots are its own;
* each worker activates its **own** :class:`~repro.store.ArtifactStore`
  over the *shared disk-tier root* — the disk tier already supports
  concurrent processes (atomic publish, corrupt-reads-as-misses), so a
  netlist made warm by one worker is warm for every worker, while live
  memory-only artifacts (warm CEC sessions) stay per-process;
* a finished job ships its complete result envelope — span tree, metric
  snapshot, and per-job store *delta* included — back to the parent, so
  SSE streaming, ``/stats``, and the envelope ``cache`` section work
  exactly as they did in-thread.

Robustness the single-thread design never needed:

* **Broken-pool salvage** — a worker crash (OOM-kill, native crash)
  breaks the whole pool; :meth:`rebuild` swaps in a fresh pool exactly
  once per break (concurrent observers of the same generation rebuild
  only once), and the server requeues each in-flight job once before
  failing it with a structured ``worker_crashed`` error.
* **Graceful drain** — :meth:`shutdown` finishes in-flight work before
  the processes exit.
* **Per-worker liveness** — every result carries its worker's pid; the
  executor keeps per-pid job counts and last-seen timestamps, tagged
  with the pool generation, for the ``/v1/stats`` ``executor`` section.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .. import telemetry
from ..budget import Budget

__all__ = ["BrokenProcessPool", "JobExecutor", "WorkerInfo"]


@dataclass
class WorkerInfo:
    """Liveness record for one observed worker process."""

    pid: int
    jobs: int = 0
    last_seen: Optional[float] = None
    generation: int = 0

    def as_dict(self, current_generation: int) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "jobs": self.jobs,
            "last_seen": self.last_seen,
            # A worker from a previous pool generation is gone by
            # construction — its pool was shut down when it broke.
            "alive": self.generation == current_generation,
        }


def _init_service_worker(
    store_root: Optional[str],
    memory_entries: int,
    telemetry_flags: Tuple[bool, bool],
) -> None:
    """Pool initializer: reset fork-inherited state, activate the store.

    Same discipline as ``flows/batch._init_worker``: under the fork
    start method the child inherits the parent's live tracer stack,
    registry, listeners, and active store — clear everything, then
    opt back in deliberately.
    """
    trace_on, metrics_on = telemetry_flags
    telemetry.disable()
    telemetry.get_tracer().reset()
    telemetry.get_registry().reset()
    telemetry.enable(trace=trace_on, metrics=metrics_on)
    from ..store.core import activate_store

    activate_store(root=store_root, memory_entries=memory_entries)


def _execute_service_job(
    command: str,
    payload: Dict[str, Any],
    budget: Optional[Budget],
    include_spans: bool,
) -> Tuple[int, Dict[str, Any]]:
    """Worker task: run one job, return ``(worker_pid, envelope)``.

    Job-level failures are *returned* (``envelope["ok"] is False``), not
    raised — exceptions crossing the process boundary lose their
    structured payloads in pickling, and a raising task is
    indistinguishable from a crashing one to the salvage logic.
    """
    crash_token = os.environ.get("REPRO_SERVICE_CRASH_TOKEN")
    if crash_token and payload.get("design") == crash_token:
        # Test-only fault hook (mirrors REPRO_BATCH_CRASH_VALUE): die the
        # way a native crash would, so pool salvage stays testable.
        os._exit(3)
    from .jobs import ServiceJobFailed, run_service_job

    try:
        envelope = run_service_job(command, payload, budget, include_spans)
    except ServiceJobFailed as exc:
        return os.getpid(), exc.envelope
    return os.getpid(), envelope


class JobExecutor:
    """N-process job execution backend (see module docstring).

    Args:
        workers: Worker process count (≥ 1).
        store_root: Shared disk-tier directory every worker activates
            its artifact store on.  ``None`` gives each worker a
            private memory-only store (cross-worker warmth off).
        memory_entries: Per-worker memory-tier LRU bound.
        include_spans: Ship span trees back in job envelopes (the
            server sets this when it is writing a whole-lifetime trace).

    Thread-safety: :meth:`submit`, :meth:`rebuild` and :meth:`stats`
    may be called from the event loop while futures resolve on pool
    threads; one lock guards the pool handle and the liveness table.
    """

    def __init__(
        self,
        workers: int,
        store_root: Optional[str] = None,
        memory_entries: int = 128,
        include_spans: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.store_root = store_root
        self.memory_entries = memory_entries
        self.include_spans = include_spans
        self.generation = 0
        self.crashes = 0
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers: Dict[int, WorkerInfo] = {}
        self._jobs_done = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_service_worker,
            initargs=(
                self.store_root,
                self.memory_entries,
                (telemetry.tracing_enabled(), telemetry.metrics_enabled()),
            ),
        )

    def start(self) -> "JobExecutor":
        with self._lock:
            if self._pool is None:
                self._pool = self._make_pool()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Graceful drain: finish in-flight jobs, then stop the workers."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def submit(
        self,
        command: str,
        payload: Dict[str, Any],
        budget: Optional[Budget] = None,
    ) -> Tuple[int, "Future[Tuple[int, Dict[str, Any]]]"]:
        """Dispatch one job; returns ``(generation, future)``.

        The generation is the pool identity at submit time — pass it to
        :meth:`rebuild` when the future raises
        :class:`BrokenProcessPool`, so concurrent casualties of one
        crash trigger exactly one rebuild.
        """
        with self._lock:
            if self._pool is None:
                raise RuntimeError("executor is not started")
            future = self._pool.submit(
                _execute_service_job, command, payload, budget,
                self.include_spans,
            )
            return self.generation, future

    def note_result(self, pid: int) -> None:
        """Record a completed job against its worker's liveness row."""
        with self._lock:
            info = self._workers.get(pid)
            if info is None:
                info = self._workers[pid] = WorkerInfo(pid=pid)
            info.jobs += 1
            info.last_seen = time.time()
            info.generation = self.generation
            self._jobs_done += 1

    def rebuild(self, seen_generation: int) -> bool:
        """Replace a broken pool (at most once per break).

        Every in-flight future of a broken pool raises
        :class:`BrokenProcessPool` at once; each caller reports the
        generation it submitted against, and only the first report for
        a generation swaps the pool.  Returns True when this call did
        the rebuild.
        """
        with self._lock:
            if self._pool is None or self.generation != seen_generation:
                return False
            self.generation += 1
            self.crashes += 1
            broken, self._pool = self._pool, self._make_pool()
        telemetry.count("service.pool_rebuilt")
        # The broken pool cannot run anything again; reap its processes
        # without waiting (they are dead or dying).
        broken.shutdown(wait=False)
        return True

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """The ``executor`` section of ``/v1/stats``."""
        with self._lock:
            generation = self.generation
            workers = [
                info.as_dict(generation)
                for info in sorted(self._workers.values(), key=lambda w: w.pid)
            ]
            return {
                "backend": "process",
                "workers": self.workers,
                "generation": generation,
                "crashes": self.crashes,
                "jobs_done": self._jobs_done,
                "store_root": self.store_root,
                "worker_processes": workers,
            }
