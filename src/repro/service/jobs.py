"""Service job execution — one submission to one result envelope.

:func:`run_service_job` is the synchronous heart of the service: it runs
on the server's single execution worker thread, resolves the submitted
design text, dispatches to the same engines the CLI uses, and wraps the
result in the unified JSON envelope (:mod:`repro.envelope`) with the
job's telemetry snapshot and — when an artifact store is active — the
store counter *delta* attributable to this job, so a client can read
directly from its response whether its submission was served warm.

Design references in a submission payload are text plus a format::

    {"design": "<blif or verilog source>", "format": "blif"}
    {"design": "des", "format": "bench"}        # bundled suite circuit

``blif`` sources are technology-mapped exactly like CLI ``.blif`` file
arguments (``map_style`` honoured); ``verilog`` is structural Verilog
over the generic library; ``bench`` names a circuit of the calibrated
benchmark suite.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from .. import telemetry
from ..budget import Budget
from ..envelope import build_envelope, cache_delta
from ..errors import DesignLoadError, ReproError
from ..flows.ladder import LadderConfig
from ..flows.options import FlowOptions
from ..netlist.circuit import Circuit
from ..store.core import active_store
from .queue import ServiceError

#: Commands a submission may name, mirroring the CLI subcommands that
#: make sense against an in-memory design.
SERVICE_COMMANDS = ("fingerprint", "batch", "locate", "verify", "prepare")


class UnknownCommandError(ServiceError):
    """A submission named a command the service does not speak (HTTP 400)."""


def resolve_design(payload: Dict[str, Any], key: str = "design") -> Circuit:
    """Materialize the circuit a submission references (see module doc)."""
    source = payload.get(key)
    if not isinstance(source, str) or not source:
        raise DesignLoadError(
            f"submission is missing a {key!r} design source", stage="service"
        )
    fmt = payload.get("format", "blif")
    if fmt == "bench":
        from ..bench import build_benchmark

        try:
            return build_benchmark(source)
        except KeyError as exc:
            raise DesignLoadError(str(exc), stage="service") from exc
    if fmt == "blif":
        from ..netlist.blif import parse_blif
        from ..techmap.mapper import map_network

        return map_network(
            parse_blif(source), style=payload.get("map_style", "aoi")
        )
    if fmt == "verilog":
        from ..netlist.verilog import parse_verilog

        return parse_verilog(source)
    raise DesignLoadError(
        f"unknown design format {fmt!r} (blif, verilog, or bench)",
        stage="service",
    )


def _flow_options(
    payload: Dict[str, Any], tenant_budget: Optional[Budget]
) -> FlowOptions:
    """Build :class:`FlowOptions` from the submission's ``options`` dict.

    A tenant budget (from its :class:`~repro.service.queue.TenantQuota`)
    overrides the ladder's SAT budget unconditionally — quotas are the
    server operator's policy, not the client's.
    """
    options = dict(payload.get("options") or {})
    ladder = options.pop("ladder", None)
    if isinstance(ladder, dict):
        ladder = LadderConfig(**ladder)
    if tenant_budget is not None:
        ladder = dataclasses.replace(
            ladder or LadderConfig(), sat_budget=tenant_budget
        )
    if ladder is not None:
        options["ladder"] = ladder
    return FlowOptions(**options)


def _flow_result_dict(result) -> Dict[str, Any]:
    """Compact JSON view of a single-copy :class:`FlowResult`."""
    payload: Dict[str, Any] = {
        "design": result.base.name,
        "n_gates": result.baseline_metrics.gates,
        "n_locations": result.capacity.n_locations,
        "n_slots": result.capacity.n_slots,
        "bits": result.capacity.bits,
        "n_modifications": result.copy.n_active,
        "overhead": {
            "area": result.overhead.area,
            "delay": result.overhead.delay,
            "power": result.overhead.power,
        },
    }
    if result.verification is not None:
        payload["verification"] = result.verification.as_dict()
    elif result.equivalence is not None:
        payload["equivalent"] = result.equivalence.equivalent
    return payload


def execute_command(
    command: str,
    payload: Dict[str, Any],
    tenant_budget: Optional[Budget] = None,
) -> Dict[str, Any]:
    """Run one service command and return its ``result`` dict."""
    from .. import api

    opts = _flow_options(payload, tenant_budget)
    if command == "batch":
        design = resolve_design(payload)
        result = api.batch(design, int(payload.get("n_copies", 8)), opts)
        return result.as_dict()
    if command == "fingerprint":
        design = resolve_design(payload)
        return _flow_result_dict(api.fingerprint(design, opts))
    if command == "locate":
        from ..fingerprint import capacity

        design = resolve_design(payload)
        catalog = api.locate(design, opts)
        report = capacity(catalog)
        return {
            "design": design.name,
            "n_gates": design.n_gates,
            "n_locations": report.n_locations,
            "n_slots": report.n_slots,
            "n_variants": report.n_variants,
            "bits": report.bits,
        }
    if command == "verify":
        left = resolve_design(payload)
        right = resolve_design(payload, key="suspect")
        return api.verify(left, right, opts).as_dict()
    if command == "prepare":
        from ..hashing import circuit_digest
        from ..store import prepare_design

        design = resolve_design(payload)
        catalog = prepare_design(design, opts.resolved_finder())
        return {
            "design": design.name,
            "digest": circuit_digest(design),
            "n_locations": catalog.n_locations,
            "prepared": active_store() is not None,
        }
    raise UnknownCommandError(
        f"unknown service command {command!r} "
        f"(valid: {', '.join(SERVICE_COMMANDS)})",
        stage="service",
    )


def run_service_job(
    command: str,
    payload: Dict[str, Any],
    tenant_budget: Optional[Budget] = None,
    include_spans: bool = False,
) -> Dict[str, Any]:
    """Execute one job and build its full response envelope.

    Runs on the execution worker thread.  The worker serializes jobs, so
    resetting the registry here and draining tracer + registry at the
    end scopes the telemetry snapshot (and the store counter delta) to
    exactly this job — a warm resubmission's envelope shows *zero*
    ``ir.compile`` / encode / catalog work of its own, not a cumulative
    blur over earlier jobs.
    """
    telemetry.get_registry().reset()
    store = active_store()
    before = store.cache_snapshot() if store is not None else None
    error: Optional[Dict[str, Any]] = None
    with telemetry.span("service.job", command=command) as job_span:
        try:
            result = execute_command(command, payload, tenant_budget)
        except ReproError as exc:
            job_span.set(error=type(exc).__name__)
            error = {"error": exc.diagnostic(), "error_type": type(exc).__name__}
            result = error
    spans = telemetry.get_tracer().drain()
    snapshot = telemetry.telemetry_snapshot(spans, include_spans=include_spans)
    cache = None
    if store is not None:
        cache = cache_delta(before, store.cache_snapshot())
    envelope = build_envelope(command, result, snapshot, cache)
    if error is not None:
        envelope["ok"] = False
        raise ServiceJobFailed(envelope)
    envelope["ok"] = True
    return envelope


class ServiceJobFailed(Exception):
    """Carries the error envelope of a failed job to the queue layer."""

    def __init__(self, envelope: Dict[str, Any]) -> None:
        super().__init__(envelope["result"].get("error", "job failed"))
        self.envelope = envelope


__all__ = [
    "SERVICE_COMMANDS",
    "ServiceJobFailed",
    "UnknownCommandError",
    "execute_command",
    "resolve_design",
    "run_service_job",
]
