"""Multi-tenant submission queue for the fingerprinting service.

One :class:`JobQueue` sits between the HTTP front end and the
multi-process execution backend: submissions append :class:`ServiceJob`
rows, the dispatcher consumes them, and every state change is published
to the job's subscribers (the server-sent-event streams).

Scheduling is **round-robin across tenants**: each tenant has its own
FIFO bucket and :meth:`next_job` rotates through tenants with queued
work, so one tenant bulk-submitting a backlog cannot starve another
tenant's single job even on a one-worker service (within a tenant,
order stays FIFO).  Tenancy is otherwise quota enforcement — a
:class:`TenantQuota` bounds how many jobs a tenant may have in flight
(queued + running) and optionally caps each job's SAT effort with a
:class:`repro.budget.Budget`, which the executor threads into the
verification ladder.  Exceeding the pending bound raises
:class:`QuotaExceededError`, which the server maps to HTTP 429.

The queue is owned by the asyncio event loop thread; job completions
arrive back on the loop via the server's dispatch tasks, so all
mutation happens on the loop thread and no locking is needed.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from .. import telemetry
from ..budget import Budget
from ..errors import ReproError
from ..hashing import content_digest


class ServiceError(ReproError, RuntimeError):
    """Base class for service-layer failures."""


class QuotaExceededError(ServiceError):
    """A tenant tried to exceed its pending-job quota (HTTP 429)."""


class UnknownJobError(ServiceError):
    """A job id that is not (or no longer) known to the queue (HTTP 404)."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits.

    Args:
        max_pending: Most jobs the tenant may have queued or running at
            once; further submissions are rejected with 429 until one
            finishes.
        budget: Optional per-job SAT budget (deadline / conflict /
            decision caps) forced onto every job the tenant submits —
            the mechanism that keeps one tenant's pathological miter
            from starving the workers.
    """

    max_pending: int = 8
    budget: Optional[Budget] = None


#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class ServiceJob:
    """One submitted unit of work and everything observed about it."""

    job_id: str
    tenant: str
    command: str
    payload: Dict[str, Any]
    serial: int = 0
    status: str = "queued"
    #: Crash-requeue count: 0 on first dispatch, 1 after the job was
    #: salvaged from a broken worker pool and queued again.
    attempts: int = 0
    envelope: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Machine-readable failure code (see ``protocol.ERROR_CODES``).
    error_code: Optional[str] = None
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: A client has seen this job's terminal state (poll or SSE).  The
    #: ``max_requests`` auto-shutdown drains on this so the final job's
    #: envelope is not torn away from a still-polling client.
    collected: bool = False
    #: Live event subscribers (asyncio queues drained by SSE handlers).
    subscribers: List["asyncio.Queue"] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")

    def describe(self) -> Dict[str, Any]:
        """Status view (everything but the result envelope).

        Field-for-field the :class:`repro.service.protocol.JobStatus`
        shape — the SSE ``status`` frames and the ``/v1`` bodies must
        never drift apart.
        """
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "command": self.command,
            "status": self.status,
            "attempts": self.attempts,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "error_code": self.error_code,
        }


class JobQueue:
    """Tenant-fair job queue with per-tenant pending quotas (see module doc)."""

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self._jobs: Dict[str, ServiceJob] = {}
        #: Per-tenant FIFO buckets + the round-robin ring.  Invariant:
        #: ``_ring`` holds exactly the tenants with a non-empty bucket,
        #: each once, in rotation order.
        self._buckets: Dict[str, Deque[ServiceJob]] = {}
        self._ring: Deque[str] = deque()
        self._available = asyncio.Semaphore(0)
        self._serial = 0
        self.counters: Dict[str, int] = {
            "submitted": 0, "rejected": 0, "done": 0, "failed": 0,
            "requeued": 0,
        }

    # ------------------------------------------------------------------ #

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def pending(self, tenant: Optional[str] = None) -> int:
        """Jobs queued or running, for one tenant or overall."""
        return sum(
            1
            for job in self._jobs.values()
            if not job.terminal and (tenant is None or job.tenant == tenant)
        )

    def depth(self) -> int:
        """Jobs waiting to start (the queue-depth gauge)."""
        return sum(1 for job in self._jobs.values() if job.status == "queued")

    def _enqueue(self, job: ServiceJob) -> None:
        bucket = self._buckets.setdefault(job.tenant, deque())
        if not bucket:
            self._ring.append(job.tenant)
        bucket.append(job)
        self._available.release()
        telemetry.gauge("service.queue_depth", self.depth())
        self.publish(job, {"event": "status", "data": job.describe()})

    def submit(
        self, command: str, payload: Dict[str, Any], tenant: str = "anonymous"
    ) -> ServiceJob:
        """Append a job, enforcing the tenant's pending quota."""
        quota = self.quota_for(tenant)
        if self.pending(tenant) >= quota.max_pending:
            self.counters["rejected"] += 1
            telemetry.count("service.rejected")
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {quota.max_pending} "
                "jobs pending",
                stage="service",
            )
        self._serial += 1
        job_id = "{}-{}".format(
            self._serial,
            content_digest(tenant, command, repr(sorted(payload.items()))),
        )
        job = ServiceJob(job_id=job_id, tenant=tenant, command=command,
                         payload=payload, serial=self._serial)
        self._jobs[job_id] = job
        self.counters["submitted"] += 1
        telemetry.count("service.submitted")
        self._enqueue(job)
        return job

    def requeue(self, job: ServiceJob) -> None:
        """Put a dispatched job back in line after a worker crash.

        The job returns to the *tail* of its tenant's bucket with its
        attempt counter bumped; the server fails it with a structured
        error instead of requeueing again on the next crash.
        """
        job.status = "queued"
        job.started = None
        job.attempts += 1
        self.counters["requeued"] += 1
        telemetry.count("service.requeued")
        self._enqueue(job)

    async def next_job(self) -> ServiceJob:
        """Await the next queued job, rotating across tenants (loop only)."""
        await self._available.acquire()
        tenant = self._ring.popleft()
        bucket = self._buckets[tenant]
        job = bucket.popleft()
        if bucket:
            self._ring.append(tenant)
        return job

    def get(self, job_id: str) -> ServiceJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(
                f"unknown job id {job_id!r}", stage="service"
            ) from None

    def list_jobs(
        self,
        tenant: Optional[str] = None,
        limit: int = 50,
        offset: int = 0,
    ) -> Tuple[int, List[ServiceJob]]:
        """``(total, page)`` of jobs in submission order, oldest first."""
        matched = sorted(
            (
                job
                for job in self._jobs.values()
                if tenant is None or job.tenant == tenant
            ),
            key=lambda job: job.serial,
        )
        return len(matched), matched[offset : offset + limit]

    # ------------------------------------------------------------------ #
    # state transitions (loop thread only)
    # ------------------------------------------------------------------ #

    def mark_running(self, job: ServiceJob) -> None:
        job.status = "running"
        job.started = time.time()
        telemetry.gauge("service.queue_depth", self.depth())
        self.publish(job, {"event": "status", "data": job.describe()})

    def mark_done(self, job: ServiceJob, envelope: Dict[str, Any]) -> None:
        job.status = "done"
        job.finished = time.time()
        job.envelope = envelope
        self.counters["done"] += 1
        telemetry.count("service.done")
        self._finish(job)

    def mark_failed(
        self,
        job: ServiceJob,
        error: str,
        code: str = "job_error",
    ) -> None:
        job.status = "failed"
        job.finished = time.time()
        job.error = error
        job.error_code = code
        self.counters["failed"] += 1
        telemetry.count("service.failed")
        self._finish(job)

    def _finish(self, job: ServiceJob) -> None:
        payload = job.describe()
        if job.envelope is not None:
            payload["envelope"] = job.envelope
        self.publish(job, {"event": "result", "data": payload})
        # Poison-pill the streams: a None wakes every subscriber so the
        # SSE handler can close its response cleanly.
        for subscriber in list(job.subscribers):
            subscriber.put_nowait(None)

    # ------------------------------------------------------------------ #
    # event streaming
    # ------------------------------------------------------------------ #

    def subscribe(self, job: ServiceJob) -> "asyncio.Queue":
        subscriber: "asyncio.Queue" = asyncio.Queue()
        job.subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, job: ServiceJob, subscriber: "asyncio.Queue") -> None:
        try:
            job.subscribers.remove(subscriber)
        except ValueError:
            pass

    def publish(self, job: ServiceJob, event: Dict[str, Any]) -> None:
        for subscriber in list(job.subscribers):
            subscriber.put_nowait(event)

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """Queue-level statistics (the ``/v1/stats`` endpoint's core)."""
        by_status: Dict[str, int] = {state: 0 for state in JOB_STATES}
        by_tenant: Dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
            if not job.terminal:
                by_tenant[job.tenant] = by_tenant.get(job.tenant, 0) + 1
        return {
            "jobs": dict(self.counters),
            "by_status": by_status,
            "pending_by_tenant": by_tenant,
            "queue_depth": self.depth(),
        }


__all__ = [
    "JOB_STATES",
    "JobQueue",
    "QuotaExceededError",
    "ServiceError",
    "ServiceJob",
    "TenantQuota",
    "UnknownJobError",
]
