"""Multi-tenant submission queue for the fingerprinting service.

One :class:`JobQueue` sits between the HTTP front end and the single
execution worker: submissions append :class:`ServiceJob` rows, the
worker consumes them FIFO, and every state change is published to the
job's subscribers (the server-sent-event streams).  Tenancy is quota
enforcement only — a :class:`TenantQuota` bounds how many jobs a tenant
may have in flight (queued + running) and optionally caps each job's SAT
effort with a :class:`repro.budget.Budget`, which the executor threads
into the verification ladder.  Exceeding the pending bound raises
:class:`QuotaExceededError`, which the server maps to HTTP 429.

The queue is owned by the asyncio event loop thread; the execution
worker reports completions back through
``loop.call_soon_threadsafe`` (see :class:`repro.service.server.Server`),
so all mutation happens on the loop thread and no locking is needed.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..budget import Budget
from ..errors import ReproError
from ..hashing import content_digest


class ServiceError(ReproError, RuntimeError):
    """Base class for service-layer failures."""


class QuotaExceededError(ServiceError):
    """A tenant tried to exceed its pending-job quota (HTTP 429)."""


class UnknownJobError(ServiceError):
    """A job id that is not (or no longer) known to the queue (HTTP 404)."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits.

    Args:
        max_pending: Most jobs the tenant may have queued or running at
            once; further submissions are rejected with 429 until one
            finishes.
        budget: Optional per-job SAT budget (deadline / conflict /
            decision caps) forced onto every job the tenant submits —
            the mechanism that keeps one tenant's pathological miter
            from starving the worker.
    """

    max_pending: int = 8
    budget: Optional[Budget] = None


#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class ServiceJob:
    """One submitted unit of work and everything observed about it."""

    job_id: str
    tenant: str
    command: str
    payload: Dict[str, Any]
    status: str = "queued"
    envelope: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: A client has seen this job's terminal state (poll or SSE).  The
    #: ``max_requests`` auto-shutdown drains on this so the final job's
    #: envelope is not torn away from a still-polling client.
    collected: bool = False
    #: Live event subscribers (asyncio queues drained by SSE handlers).
    subscribers: List["asyncio.Queue"] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")

    def describe(self) -> Dict[str, Any]:
        """Status view (everything but the result envelope)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "command": self.command,
            "status": self.status,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
        }


class JobQueue:
    """FIFO job queue with per-tenant pending quotas (see module docstring)."""

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self._jobs: Dict[str, ServiceJob] = {}
        self._ready: "asyncio.Queue[ServiceJob]" = asyncio.Queue()
        self._serial = 0
        self.counters: Dict[str, int] = {
            "submitted": 0, "rejected": 0, "done": 0, "failed": 0,
        }

    # ------------------------------------------------------------------ #

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def pending(self, tenant: Optional[str] = None) -> int:
        """Jobs queued or running, for one tenant or overall."""
        return sum(
            1
            for job in self._jobs.values()
            if not job.terminal and (tenant is None or job.tenant == tenant)
        )

    def depth(self) -> int:
        """Jobs waiting to start (the queue-depth gauge)."""
        return sum(1 for job in self._jobs.values() if job.status == "queued")

    def submit(
        self, command: str, payload: Dict[str, Any], tenant: str = "anonymous"
    ) -> ServiceJob:
        """Append a job, enforcing the tenant's pending quota."""
        quota = self.quota_for(tenant)
        if self.pending(tenant) >= quota.max_pending:
            self.counters["rejected"] += 1
            telemetry.count("service.rejected")
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {quota.max_pending} "
                "jobs pending",
                stage="service",
            )
        self._serial += 1
        job_id = "{}-{}".format(
            self._serial,
            content_digest(tenant, command, repr(sorted(payload.items()))),
        )
        job = ServiceJob(job_id=job_id, tenant=tenant, command=command,
                         payload=payload)
        self._jobs[job_id] = job
        self._ready.put_nowait(job)
        self.counters["submitted"] += 1
        telemetry.count("service.submitted")
        telemetry.gauge("service.queue_depth", self.depth())
        self.publish(job, {"event": "status", "data": job.describe()})
        return job

    async def next_job(self) -> ServiceJob:
        """Await the next queued job (loop thread only)."""
        return await self._ready.get()

    def get(self, job_id: str) -> ServiceJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(
                f"unknown job id {job_id!r}", stage="service"
            ) from None

    # ------------------------------------------------------------------ #
    # state transitions (loop thread only)
    # ------------------------------------------------------------------ #

    def mark_running(self, job: ServiceJob) -> None:
        job.status = "running"
        job.started = time.time()
        telemetry.gauge("service.queue_depth", self.depth())
        self.publish(job, {"event": "status", "data": job.describe()})

    def mark_done(self, job: ServiceJob, envelope: Dict[str, Any]) -> None:
        job.status = "done"
        job.finished = time.time()
        job.envelope = envelope
        self.counters["done"] += 1
        telemetry.count("service.done")
        self._finish(job)

    def mark_failed(self, job: ServiceJob, error: str) -> None:
        job.status = "failed"
        job.finished = time.time()
        job.error = error
        self.counters["failed"] += 1
        telemetry.count("service.failed")
        self._finish(job)

    def _finish(self, job: ServiceJob) -> None:
        payload = job.describe()
        if job.envelope is not None:
            payload["envelope"] = job.envelope
        self.publish(job, {"event": "result", "data": payload})
        # Poison-pill the streams: a None wakes every subscriber so the
        # SSE handler can close its response cleanly.
        for subscriber in list(job.subscribers):
            subscriber.put_nowait(None)

    # ------------------------------------------------------------------ #
    # event streaming
    # ------------------------------------------------------------------ #

    def subscribe(self, job: ServiceJob) -> "asyncio.Queue":
        subscriber: "asyncio.Queue" = asyncio.Queue()
        job.subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, job: ServiceJob, subscriber: "asyncio.Queue") -> None:
        try:
            job.subscribers.remove(subscriber)
        except ValueError:
            pass

    def publish(self, job: ServiceJob, event: Dict[str, Any]) -> None:
        for subscriber in list(job.subscribers):
            subscriber.put_nowait(event)

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """Queue-level statistics (the ``/stats`` endpoint's core)."""
        by_status: Dict[str, int] = {state: 0 for state in JOB_STATES}
        by_tenant: Dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
            if not job.terminal:
                by_tenant[job.tenant] = by_tenant.get(job.tenant, 0) + 1
        return {
            "jobs": dict(self.counters),
            "by_status": by_status,
            "pending_by_tenant": by_tenant,
            "queue_depth": self.depth(),
        }


__all__ = [
    "JOB_STATES",
    "JobQueue",
    "QuotaExceededError",
    "ServiceError",
    "ServiceJob",
    "TenantQuota",
    "UnknownJobError",
]
