"""Fingerprinting-as-a-service: the async HTTP layer over ``repro.api``.

::

    from repro.service import Server, ServiceClient, TenantQuota

    server = Server(port=0).start_in_thread()       # or repro-fp serve
    client = ServiceClient(port=server.port)
    envelope = client.run("batch", design=text, format="verilog")
    server.stop_thread()

See :mod:`repro.service.server` for the endpoint reference and the
threading model, :mod:`repro.service.queue` for tenancy/quotas, and
:mod:`repro.service.jobs` for the command set.
"""

from .client import ServiceClient, ServiceHttpError
from .jobs import SERVICE_COMMANDS, run_service_job
from .queue import (
    JobQueue,
    QuotaExceededError,
    ServiceError,
    ServiceJob,
    TenantQuota,
    UnknownJobError,
)
from .server import Server, serve

__all__ = [
    "JobQueue",
    "QuotaExceededError",
    "SERVICE_COMMANDS",
    "Server",
    "ServiceClient",
    "ServiceError",
    "ServiceHttpError",
    "ServiceJob",
    "TenantQuota",
    "UnknownJobError",
    "run_service_job",
    "serve",
]
