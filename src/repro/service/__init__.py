"""Fingerprinting-as-a-service: the async HTTP layer over ``repro.api``.

::

    from repro.service import Server, ServiceClient, TenantQuota

    server = Server(port=0, workers=4).start_in_thread()  # or repro-fp serve
    client = ServiceClient(port=server.port)
    envelope = client.run("batch", design=text, format="verilog")
    server.stop_thread()

See :mod:`repro.service.server` for the endpoint reference,
:mod:`repro.service.protocol` for the typed ``/v1`` request/response
contract, :mod:`repro.service.executor` for the multi-process execution
backend, :mod:`repro.service.queue` for tenancy/quotas/fair scheduling,
and :mod:`repro.service.jobs` for the command set.
"""

from .client import ServiceClient, ServiceHttpError
from .executor import JobExecutor, WorkerInfo
from .jobs import SERVICE_COMMANDS, run_service_job
from .protocol import (
    API_PREFIX,
    ERROR_CODES,
    ErrorBody,
    JobListing,
    JobStatus,
    ProtocolError,
    StatsResponse,
    SubmitAccepted,
    SubmitRequest,
)
from .queue import (
    JobQueue,
    QuotaExceededError,
    ServiceError,
    ServiceJob,
    TenantQuota,
    UnknownJobError,
)
from .server import Server, serve

__all__ = [
    "API_PREFIX",
    "ERROR_CODES",
    "ErrorBody",
    "JobExecutor",
    "JobListing",
    "JobQueue",
    "JobStatus",
    "ProtocolError",
    "QuotaExceededError",
    "SERVICE_COMMANDS",
    "Server",
    "ServiceClient",
    "ServiceError",
    "ServiceHttpError",
    "ServiceJob",
    "StatsResponse",
    "SubmitAccepted",
    "SubmitRequest",
    "TenantQuota",
    "UnknownJobError",
    "WorkerInfo",
    "run_service_job",
    "serve",
]
