"""Typed request/response contract of the versioned ``/v1`` service API.

PR 7's HTTP surface grew organically: each handler hand-built its JSON
dialect, validation errors were ad-hoc strings, and nothing pinned the
response shapes clients could rely on.  This module is the contract.
Every ``/v1`` body — and, byte-for-byte, every legacy-alias body — is
produced by one of these dataclasses:

========================= ==============================================
:class:`SubmitRequest`    parsed + validated ``POST /v1/jobs`` body
:class:`SubmitAccepted`   the 202 acknowledgement
:class:`JobStatus`        one job's lifecycle view (``GET /v1/jobs/<id>``)
:class:`JobListing`       paginated tenant listing (``GET /v1/jobs``)
:class:`StatsResponse`    the ``result`` of the ``/v1/stats`` envelope
:class:`ErrorBody`        every non-2xx body, with a machine ``code``
========================= ==============================================

Validation failures raise :class:`ProtocolError`, which carries a ready
:class:`ErrorBody`; the server maps it straight to a structured 400.
Machine-readable error codes are enumerated in :data:`ERROR_CODES` and
are part of the API contract (clients dispatch on ``code``, never on
message text).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .jobs import SERVICE_COMMANDS
from .queue import ServiceError, ServiceJob

#: The versioned path prefix.  Unprefixed routes remain as deprecated
#: aliases: same handlers, same bodies, plus a ``Deprecation`` header.
API_PREFIX = "/v1"

#: Machine-readable error codes a ``/v1`` response may carry, by status.
ERROR_CODES = {
    "bad_json": 400,          # body is not valid JSON
    "invalid_body": 400,      # JSON but not an object
    "invalid_field": 400,     # a known field has the wrong type/value
    "unknown_command": 400,   # command outside SERVICE_COMMANDS
    "job_error": 400,         # the engine rejected the submission payload
    "unknown_job": 404,       # job id not (or no longer) known
    "not_found": 404,         # no such route
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "quota_exceeded": 429,    # tenant pending-job quota hit (retryable)
    "worker_crashed": 500,    # job lost to a worker crash twice
    "internal": 500,
}

#: Fields of a submission body the protocol validates; everything else
#: is passed through to the engine untouched (options stay open-ended).
_TYPED_FIELDS: Tuple[Tuple[str, type, str], ...] = (
    ("command", str, "string"),
    ("design", str, "string"),
    ("suspect", str, "string"),
    ("format", str, "string"),
    ("tenant", str, "string"),
    ("map_style", str, "string"),
    ("n_copies", int, "integer"),
    ("options", dict, "object"),
)


@dataclass(frozen=True)
class ErrorBody:
    """A structured non-2xx response body.

    ``error`` keeps the human-readable message under the key the legacy
    dialect always used, so pre-``/v1`` clients parse it unchanged;
    ``code`` is the machine-readable contract; ``details`` are merged
    into the body top-level (e.g. the valid ``commands`` list).
    """

    error: str
    code: str
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def status(self) -> int:
        return ERROR_CODES.get(self.code, 500)

    def as_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"error": self.error, "code": self.code}
        for key, value in self.details.items():
            body.setdefault(key, value)
        return body


class ProtocolError(ServiceError):
    """A submission that violates the typed contract (structured 400)."""

    def __init__(self, code: str, message: str, **details: Any) -> None:
        super().__init__(message, stage="service")
        self.code = code
        self.details = details

    @property
    def body(self) -> ErrorBody:
        return ErrorBody(error=self.message, code=self.code,
                         details=dict(self.details))


@dataclass(frozen=True)
class SubmitRequest:
    """A validated job submission.

    ``payload`` is the full body (typed fields checked, engine options
    passed through); ``command`` and ``tenant`` are lifted out because
    the queue routes on them.
    """

    command: str
    tenant: str
    payload: Dict[str, Any]

    @classmethod
    def parse(
        cls,
        payload: Any,
        headers: Optional[Mapping[str, str]] = None,
    ) -> "SubmitRequest":
        """Validate a decoded submission body (raises :class:`ProtocolError`)."""
        if not isinstance(payload, dict):
            raise ProtocolError(
                "invalid_body",
                f"submission body must be a JSON object, "
                f"got {type(payload).__name__}",
            )
        for name, expected, label in _TYPED_FIELDS:
            if name in payload and not isinstance(payload[name], expected):
                raise ProtocolError(
                    "invalid_field",
                    f"field {name!r} must be a {label}, "
                    f"got {type(payload[name]).__name__}",
                    field=name,
                )
        command = payload.get("command")
        if command not in SERVICE_COMMANDS:
            raise ProtocolError(
                "unknown_command",
                f"unknown command {command!r}",
                commands=list(SERVICE_COMMANDS),
            )
        tenant = payload.get("tenant")
        if not tenant and headers:
            tenant = headers.get("x-tenant")
        return cls(command=command, tenant=str(tenant or "anonymous"),
                   payload=payload)


@dataclass(frozen=True)
class SubmitAccepted:
    """The 202 acknowledgement for an accepted submission."""

    job_id: str
    status: str
    tenant: str
    poll: str
    stream: str

    @classmethod
    def from_job(cls, job: ServiceJob) -> "SubmitAccepted":
        return cls(
            job_id=job.job_id,
            status=job.status,
            tenant=job.tenant,
            poll=f"{API_PREFIX}/jobs/{job.job_id}",
            stream=f"{API_PREFIX}/jobs/{job.job_id}/events",
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "tenant": self.tenant,
            "poll": self.poll,
            "stream": self.stream,
        }


@dataclass(frozen=True)
class JobStatus:
    """One job's lifecycle view; the body of ``GET /v1/jobs/<id>``.

    The field set matches :meth:`ServiceJob.describe` exactly (the SSE
    ``status`` frames use the same shape), plus the result ``envelope``
    once the job is terminal.
    """

    job_id: str
    tenant: str
    command: str
    status: str
    attempts: int
    created: float
    started: Optional[float]
    finished: Optional[float]
    error: Optional[str]
    error_code: Optional[str]
    envelope: Optional[Dict[str, Any]] = None

    @classmethod
    def from_job(
        cls, job: ServiceJob, include_envelope: bool = True
    ) -> "JobStatus":
        return cls(
            envelope=job.envelope if include_envelope else None,
            **job.describe(),
        )

    def as_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "command": self.command,
            "status": self.status,
            "attempts": self.attempts,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "error_code": self.error_code,
        }
        if self.envelope is not None:
            body["envelope"] = self.envelope
        return body


@dataclass(frozen=True)
class JobListing:
    """Paginated job enumeration; the body of ``GET /v1/jobs``.

    ``total`` counts every job matching the tenant filter, so clients
    page with ``offset + len(jobs) < total``.  Envelopes are never
    inlined here — a listing of thousands of terminal jobs must stay
    cheap; fetch ``/v1/jobs/<id>`` for results.
    """

    jobs: List[JobStatus]
    total: int
    limit: int
    offset: int
    tenant: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs": [status.as_dict() for status in self.jobs],
            "total": self.total,
            "limit": self.limit,
            "offset": self.offset,
            "tenant": self.tenant,
        }


@dataclass(frozen=True)
class StatsResponse:
    """The ``result`` section of the ``/v1/stats`` envelope."""

    uptime_s: float
    commands: Sequence[str]
    jobs: Dict[str, int]
    by_status: Dict[str, int]
    pending_by_tenant: Dict[str, int]
    queue_depth: int
    executor: Dict[str, Any]
    deprecated: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "uptime_s": self.uptime_s,
            "commands": list(self.commands),
            "jobs": dict(self.jobs),
            "by_status": dict(self.by_status),
            "pending_by_tenant": dict(self.pending_by_tenant),
            "queue_depth": self.queue_depth,
            "executor": dict(self.executor),
            "deprecated": dict(self.deprecated),
        }


__all__ = [
    "API_PREFIX",
    "ERROR_CODES",
    "ErrorBody",
    "JobListing",
    "JobStatus",
    "ProtocolError",
    "StatsResponse",
    "SubmitAccepted",
    "SubmitRequest",
]
