"""Asyncio HTTP/JSON fingerprinting service (zero new dependencies).

One :class:`Server` owns four moving parts:

* an ``asyncio.start_server`` HTTP/1.1 front end (hand-rolled request
  parsing — the stdlib ships no async HTTP server, and the repo takes no
  third-party dependencies);
* the multi-tenant :class:`~repro.service.queue.JobQueue`;
* a **single execution worker thread** that drains the queue through
  :func:`~repro.service.jobs.run_service_job`.  One thread, not a pool:
  the telemetry tracer and the warm CEC sessions in the artifact store
  are process-global and not thread-safe, so the service serializes job
  *execution* and gets its parallelism inside a job (``options.jobs``
  fans a batch across the ``flows/batch`` process pool) — plus, of
  course, from the artifact store making repeat work disappear;
* a process-wide :class:`~repro.store.ArtifactStore`, activated at
  startup, so every submission of a structurally identical netlist
  reuses the compiled IR, base CNF, location catalog and warm
  incremental session of the first.

Endpoints (all JSON; responses use the CLI envelope where a command ran):

====== ======================= ===========================================
GET    ``/health``             liveness + version
GET    ``/stats``              queue, tenant, store and uptime statistics
POST   ``/jobs``               submit ``{"command", "design", ...}`` → 202
GET    ``/jobs/<id>``          status, plus the envelope once terminal
GET    ``/jobs/<id>/events``   server-sent events: live spans → result
POST   ``/shutdown``           graceful stop (used by tests/smoke)
====== ======================= ===========================================

Progress streaming: the server subscribes a listener to the telemetry
tracer; every span finished by the running job is forwarded over
``loop.call_soon_threadsafe`` into the job's SSE subscriber queues as an
``event: span`` frame, followed by a final ``event: result`` frame
carrying the full envelope.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from .. import telemetry
from ..envelope import active_cache_section, build_envelope
from ..errors import ReproError
from ..store.core import ArtifactStore, activate_store, active_store
from .jobs import SERVICE_COMMANDS, ServiceJobFailed, run_service_job
from .queue import (
    JobQueue,
    QuotaExceededError,
    ServiceJob,
    TenantQuota,
    UnknownJobError,
)

#: Submissions larger than this are rejected (413) before body read.
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class Server:
    """The long-running fingerprinting service (see module docstring).

    Args:
        host/port: Bind address; port 0 binds an ephemeral port
            (``self.port`` holds the real one after :meth:`start`).
        store: Artifact store to activate for the process, or ``None``
            to build a memory-only one.
        default_quota: Quota applied to tenants without an explicit one.
        quotas: Per-tenant overrides, keyed by tenant name.
        trace_path: When set, spans of every job are accumulated and
            written as one Chrome trace file on shutdown (and job
            envelopes inline their span trees).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        store: Optional[ArtifactStore] = None,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        trace_path: Optional[str] = None,
        max_requests: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.store = store
        self.default_quota = default_quota
        self.quotas = quotas
        self.trace_path = trace_path
        #: Shut down gracefully after this many completed jobs (CI use).
        self.max_requests = max_requests
        self.queue: Optional[JobQueue] = None
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._stop: Optional[asyncio.Event] = None
        self._current_job: Optional[ServiceJob] = None
        self._span_payloads: list = []
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the socket, activate the store, start the worker."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.queue = JobQueue(self.default_quota, self.quotas)
        if active_store() is None or self.store is not None:
            activate_store(self.store)
            self.store = active_store()
        telemetry.enable(trace=bool(self.trace_path), metrics=True)
        telemetry.get_tracer().add_listener(self._on_span)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self._worker_task = asyncio.ensure_future(self._worker())

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (or ``POST /shutdown``)."""
        assert self._stop is not None
        await self._stop.wait()
        await self._shutdown_async()

    async def run_async(self) -> None:
        await self.start()
        await self.serve_forever()

    def run(self) -> None:
        """Run the server on a fresh event loop until shut down."""
        asyncio.run(self.run_async())

    def shutdown(self) -> None:
        """Request a graceful stop (safe from any thread, idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed — server is down

    async def _shutdown_async(self) -> None:
        if self._worker_task is not None:
            self._worker_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        telemetry.get_tracer().remove_listener(self._on_span)
        if self.trace_path and self._span_payloads:
            from ..telemetry import span_from_dict, write_chrome_trace

            write_chrome_trace(
                self.trace_path,
                [span_from_dict(p) for p in self._span_payloads],
            )

    # -------------------- test/embedding helpers ---------------------- #

    def start_in_thread(self, timeout: float = 30.0) -> "Server":
        """Run the whole server on a daemon thread; returns when bound.

        The embedding pattern behind the test suite and the smoke
        script: the caller keeps its thread, talks HTTP to
        ``self.port``, and finally calls :meth:`stop_thread`.
        """
        ready = threading.Event()

        async def _main() -> None:
            await self.start()
            ready.set()
            await self.serve_forever()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_main()), daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("service failed to start within timeout")
        return self

    def stop_thread(self, timeout: float = 30.0) -> None:
        """Shut down a :meth:`start_in_thread` server and join its thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------ #
    # execution worker
    # ------------------------------------------------------------------ #

    async def _worker(self) -> None:
        assert self.queue is not None and self._loop is not None
        while True:
            job = await self.queue.next_job()
            self.queue.mark_running(job)
            self._current_job = job
            budget = self.queue.quota_for(job.tenant).budget
            try:
                envelope = await self._loop.run_in_executor(
                    self._executor,
                    run_service_job,
                    job.command,
                    job.payload,
                    budget,
                    bool(self.trace_path),
                )
            except ServiceJobFailed as exc:
                job.envelope = exc.envelope
                self._collect_spans(exc.envelope)
                self.queue.mark_failed(job, str(exc))
            except Exception as exc:  # noqa: BLE001 - job must not kill worker
                self.queue.mark_failed(
                    job, f"{type(exc).__name__}: {exc}"
                )
            else:
                self._collect_spans(envelope)
                self.queue.mark_done(job, envelope)
            finally:
                self._current_job = None
            served = self.queue.counters["done"] + self.queue.counters["failed"]
            if self.max_requests is not None and served >= self.max_requests:
                await self._drain_then_stop()
                return

    async def _drain_then_stop(self, grace_s: float = 10.0) -> None:
        """Stop once every finished job's result has reached a client.

        Closing the listening socket the instant the last job completes
        would race the client still polling ``GET /jobs/<id>`` for its
        envelope; wait (bounded by ``grace_s``) until each terminal job
        has been collected at least once.
        """
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline:
            uncollected = [
                job
                for job in self.queue._jobs.values()
                if job.terminal and not job.collected
            ]
            if not uncollected:
                break
            await asyncio.sleep(0.05)
        self._stop.set()

    def _collect_spans(self, envelope: Dict[str, Any]) -> None:
        if self.trace_path:
            self._span_payloads.extend(
                envelope.get("telemetry", {}).get("spans") or []
            )

    def _on_span(self, span) -> None:
        """Tracer listener (runs on the worker thread mid-job)."""
        job = self._current_job
        if job is None or self._loop is None or not job.subscribers:
            return
        event = {
            "event": "span",
            "data": {
                "name": span.name,
                "duration": span.duration,
                "attrs": dict(span.attrs),
            },
        }
        self._loop.call_soon_threadsafe(self.queue.publish, job, event)

    # ------------------------------------------------------------------ #
    # HTTP front end
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            await self._route(method, path, headers, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            return method, path, headers, b"__TOO_LARGE__"
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        assert self.queue is not None
        if body == b"__TOO_LARGE__":
            await self._respond(writer, 413, {"error": "request body too large"})
            return
        if path == "/health" and method == "GET":
            from .. import __version__

            await self._respond(writer, 200, {
                "status": "ok",
                "version": __version__,
                "uptime_s": time.time() - (self.started_at or time.time()),
            })
            return
        if path == "/stats" and method == "GET":
            await self._respond(writer, 200, self._stats_envelope())
            return
        if path == "/jobs" and method == "POST":
            await self._submit(headers, body, writer)
            return
        if path == "/shutdown" and method == "POST":
            await self._respond(writer, 200, {"status": "stopping"})
            self._stop.set()
            return
        if path.startswith("/jobs/") and method == "GET":
            job_id, _, tail = path[len("/jobs/"):].partition("/")
            try:
                job = self.queue.get(job_id)
            except UnknownJobError as exc:
                await self._respond(writer, 404, {"error": str(exc)})
                return
            if tail == "events":
                await self._stream_events(job, writer)
            elif tail == "":
                payload = job.describe()
                if job.envelope is not None:
                    payload["envelope"] = job.envelope
                await self._respond(writer, 200, payload)
                if job.terminal:
                    job.collected = True
            else:
                await self._respond(writer, 404, {"error": f"no route {path!r}"})
            return
        await self._respond(
            writer,
            405 if path in ("/jobs", "/health", "/stats", "/shutdown") else 404,
            {"error": f"no route for {method} {path}"},
        )

    def _stats_envelope(self) -> Dict[str, Any]:
        result: Dict[str, Any] = {
            "uptime_s": time.time() - (self.started_at or time.time()),
            "commands": list(SERVICE_COMMANDS),
            **self.queue.stats(),
        }
        return build_envelope(
            "stats",
            result,
            telemetry.telemetry_snapshot([]),
            active_cache_section(),
        )

    async def _submit(
        self, headers: Dict[str, str], body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond(writer, 400, {"error": f"bad JSON body: {exc}"})
            return
        if not isinstance(payload, dict):
            await self._respond(writer, 400, {"error": "body must be an object"})
            return
        command = payload.get("command")
        if command not in SERVICE_COMMANDS:
            await self._respond(writer, 400, {
                "error": f"unknown command {command!r}",
                "commands": list(SERVICE_COMMANDS),
            })
            return
        tenant = str(
            payload.get("tenant") or headers.get("x-tenant") or "anonymous"
        )
        try:
            job = self.queue.submit(command, payload, tenant)
        except QuotaExceededError as exc:
            await self._respond(writer, 429, {"error": str(exc)})
            return
        except ReproError as exc:
            await self._respond(writer, 400, {"error": exc.diagnostic()})
            return
        await self._respond(writer, 202, {
            "job_id": job.job_id,
            "status": job.status,
            "tenant": tenant,
            "poll": f"/jobs/{job.job_id}",
            "stream": f"/jobs/{job.job_id}/events",
        })

    async def _stream_events(
        self, job: ServiceJob, writer: asyncio.StreamWriter
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()

        def frame(event: Dict[str, Any]) -> bytes:
            data = json.dumps(event["data"], default=str)
            return f"event: {event['event']}\ndata: {data}\n\n".encode("utf-8")

        if job.terminal:
            payload = job.describe()
            if job.envelope is not None:
                payload["envelope"] = job.envelope
            writer.write(frame({"event": "result", "data": payload}))
            await writer.drain()
            job.collected = True
            return
        subscriber = self.queue.subscribe(job)
        try:
            writer.write(frame({"event": "status", "data": job.describe()}))
            await writer.drain()
            while True:
                event = await subscriber.get()
                if event is None:
                    break
                writer.write(frame(event))
                await writer.drain()
                if event.get("event") == "result":
                    job.collected = True
                    break
        finally:
            self.queue.unsubscribe(job, subscriber)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_dir: Optional[str] = None,
    memory_entries: int = 128,
    default_quota: Optional[TenantQuota] = None,
    quotas: Optional[Dict[str, TenantQuota]] = None,
    trace_path: Optional[str] = None,
) -> Server:
    """Build a :class:`Server` with a store rooted at ``store_dir``.

    Does not start it — call :meth:`Server.run` (blocking),
    :meth:`Server.run_async`, or :meth:`Server.start_in_thread`.
    """
    store = ArtifactStore(root=store_dir, memory_entries=memory_entries)
    return Server(
        host=host,
        port=port,
        store=store,
        default_quota=default_quota,
        quotas=quotas,
        trace_path=trace_path,
    )


__all__ = ["MAX_BODY_BYTES", "Server", "serve"]
