"""Asyncio HTTP/JSON fingerprinting service (zero new dependencies).

One :class:`Server` owns four moving parts:

* an ``asyncio.start_server`` HTTP/1.1 front end (hand-rolled request
  parsing — the stdlib ships no async HTTP server, and the repo takes no
  third-party dependencies) speaking the versioned, typed ``/v1`` API
  (:mod:`repro.service.protocol`); unversioned routes remain as
  deprecated aliases (same handlers, byte-identical bodies, plus a
  ``Deprecation`` header and a telemetry counter);
* the multi-tenant, tenant-fair :class:`~repro.service.queue.JobQueue`;
* the multi-process execution backend
  (:class:`~repro.service.executor.JobExecutor`): a dispatcher task
  feeds up to N worker *processes*, so CPU-bound jobs from different
  tenants overlap on multi-core hosts.  Every worker activates its own
  artifact store over a shared disk-tier root (cross-worker warmth);
  finished jobs ship their span trees, metric snapshots and store
  deltas back in the result envelope, so SSE streaming, ``/stats`` and
  per-job ``cache`` sections behave exactly as the single-thread
  backend did.  A worker crash breaks the pool: the server rebuilds it,
  requeues each in-flight job once, and fails a twice-crashed job with
  a structured ``worker_crashed`` error.

Endpoints (all JSON; responses use the CLI envelope where a command ran):

====== =========================== =======================================
GET    ``/v1/health``              liveness + version
GET    ``/v1/stats``               queue, tenant, executor, store stats
POST   ``/v1/jobs``                submit a typed SubmitRequest → 202
GET    ``/v1/jobs``                tenant-filtered listing w/ pagination
GET    ``/v1/jobs/<id>``           status, plus the envelope once terminal
GET    ``/v1/jobs/<id>/events``    server-sent events: spans → result
POST   ``/v1/shutdown``            graceful drain-then-stop
====== =========================== =======================================

Progress streaming: a running job's span tree rides back with its
result envelope; the server replays it to the job's SSE subscribers as
``event: span`` frames, followed by the final ``event: result`` frame
carrying the full envelope.
"""

from __future__ import annotations

import asyncio
import json
import shutil
import tempfile
import threading
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import telemetry
from ..envelope import active_cache_section, build_envelope
from ..errors import ReproError
from ..store.core import ArtifactStore, activate_store, active_store
from .executor import BrokenProcessPool, JobExecutor
from .jobs import SERVICE_COMMANDS
from .protocol import (
    API_PREFIX,
    ErrorBody,
    JobListing,
    JobStatus,
    ProtocolError,
    StatsResponse,
    SubmitAccepted,
    SubmitRequest,
)
from .queue import (
    JobQueue,
    QuotaExceededError,
    ServiceJob,
    TenantQuota,
    UnknownJobError,
)

#: Submissions larger than this are rejected (413) before body read.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Hard cap on one listing page (clients page with limit/offset).
MAX_LIST_LIMIT = 500

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Headers added to every matched legacy (unversioned) route.
_DEPRECATION_HEADERS = {
    "Deprecation": "true",
    "Link": f'<{API_PREFIX}>; rel="successor-version"',
}


class Server:
    """The long-running fingerprinting service (see module docstring).

    Args:
        host/port: Bind address; port 0 binds an ephemeral port
            (``self.port`` holds the real one after :meth:`start`).
        store: Artifact store to activate for the process, or ``None``
            to build a memory-only one.  Worker processes always share
            a *disk* tier: the store's root when it has one, otherwise
            a temporary directory owned (and removed) by the server.
        workers: Worker process count for the execution backend.
        default_quota: Quota applied to tenants without an explicit one.
        quotas: Per-tenant overrides, keyed by tenant name.
        trace_path: When set, spans of every job are accumulated and
            written as one Chrome trace file on shutdown (and job
            envelopes inline their span trees).
        max_requests: Shut down gracefully after this many completed
            jobs (CI use).
        drain_grace_s: Bound on the shutdown wait for in-flight jobs.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        store: Optional[ArtifactStore] = None,
        workers: int = 1,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        trace_path: Optional[str] = None,
        max_requests: Optional[int] = None,
        drain_grace_s: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.store = store
        self.workers = max(1, int(workers))
        self.default_quota = default_quota
        self.quotas = quotas
        self.trace_path = trace_path
        self.max_requests = max_requests
        self.drain_grace_s = drain_grace_s
        self.queue: Optional[JobQueue] = None
        self.started_at: Optional[float] = None
        self.deprecated_hits: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._backend: Optional[JobExecutor] = None
        self._dispatch_task: Optional[asyncio.Task] = None
        self._active: set = set()
        self._slots: Optional[asyncio.Semaphore] = None
        self._stop: Optional[asyncio.Event] = None
        self._draining = False
        self._span_payloads: list = []
        self._store_tmp: Optional[str] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the socket, activate the store, start the backend."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._draining = False
        self.queue = JobQueue(self.default_quota, self.quotas)
        if active_store() is None or self.store is not None:
            activate_store(self.store)
        self.store = active_store()
        telemetry.enable(trace=bool(self.trace_path), metrics=True)
        worker_root = self.store.root if self.store is not None else None
        if worker_root is None:
            # No disk tier configured: give the workers a private shared
            # root anyway, so artifacts made warm by one worker process
            # are warm for all of them.  Removed on shutdown.
            self._store_tmp = tempfile.mkdtemp(prefix="repro-service-store-")
            worker_root = self._store_tmp
        self._backend = JobExecutor(
            workers=self.workers,
            store_root=worker_root,
            memory_entries=(
                self.store.memory_entries if self.store is not None else 128
            ),
            include_spans=bool(self.trace_path),
        ).start()
        self._slots = asyncio.Semaphore(self.workers)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self._dispatch_task = asyncio.ensure_future(self._dispatcher())

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (or ``POST /v1/shutdown``)."""
        assert self._stop is not None
        await self._stop.wait()
        await self._shutdown_async()

    async def run_async(self) -> None:
        await self.start()
        await self.serve_forever()

    def run(self) -> None:
        """Run the server on a fresh event loop until shut down."""
        asyncio.run(self.run_async())

    def shutdown(self) -> None:
        """Request a graceful stop (safe from any thread, idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed — server is down

    async def _shutdown_async(self) -> None:
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Graceful drain: let every dispatched job finish (bounded) so
        # no verdict computed by a worker is thrown away at shutdown.
        if self._active:
            await asyncio.wait(set(self._active), timeout=self.drain_grace_s)
        if self._backend is not None:
            self._backend.shutdown(wait=True)
        if self.trace_path and self._span_payloads:
            from ..telemetry import span_from_dict, write_chrome_trace

            write_chrome_trace(
                self.trace_path,
                [span_from_dict(p) for p in self._span_payloads],
            )
        if self._store_tmp is not None:
            shutil.rmtree(self._store_tmp, ignore_errors=True)
            self._store_tmp = None

    # -------------------- test/embedding helpers ---------------------- #

    def start_in_thread(self, timeout: float = 30.0) -> "Server":
        """Run the whole server on a daemon thread; returns when bound.

        The embedding pattern behind the test suite and the load
        harness: the caller keeps its thread, talks HTTP to
        ``self.port``, and finally calls :meth:`stop_thread`.
        """
        ready = threading.Event()

        async def _main() -> None:
            await self.start()
            ready.set()
            await self.serve_forever()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_main()), daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("service failed to start within timeout")
        return self

    def stop_thread(self, timeout: float = 30.0) -> None:
        """Shut down a :meth:`start_in_thread` server and join its thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------ #
    # job dispatch (multi-process backend)
    # ------------------------------------------------------------------ #

    async def _dispatcher(self) -> None:
        """Feed queued jobs to the worker pool, one slot per worker.

        The semaphore keeps at most ``workers`` jobs dispatched, so
        tenant-fair ordering is decided by the queue at the moment a
        worker actually frees up, not by a long pool-internal backlog.
        """
        assert self.queue is not None and self._slots is not None
        while True:
            job = await self.queue.next_job()
            await self._slots.acquire()
            task = asyncio.ensure_future(self._run_one(job))
            self._active.add(task)
            task.add_done_callback(self._job_task_done)

    def _job_task_done(self, task: "asyncio.Task") -> None:
        self._active.discard(task)
        if self._slots is not None:
            self._slots.release()

    async def _run_one(self, job: ServiceJob) -> None:
        assert self.queue is not None and self._backend is not None
        self.queue.mark_running(job)
        budget = self.queue.quota_for(job.tenant).budget
        generation = self._backend.generation
        try:
            generation, future = self._backend.submit(
                job.command, job.payload, budget
            )
            pid, envelope = await asyncio.wrap_future(future)
        except BrokenProcessPool:
            # A worker died and took the pool with it.  Rebuild (first
            # observer wins), then salvage: requeue this job once; a
            # job that was in flight across two crashes is the likely
            # culprit and fails with a structured error.
            self._backend.rebuild(generation)
            if job.attempts < 1:
                self.queue.requeue(job)
            else:
                self.queue.mark_failed(
                    job,
                    "worker process crashed twice while executing this "
                    "job; not requeued again",
                    code="worker_crashed",
                )
                self._after_terminal()
            return
        except Exception as exc:  # noqa: BLE001 - job must not kill dispatch
            self.queue.mark_failed(
                job, f"{type(exc).__name__}: {exc}", code="internal"
            )
            self._after_terminal()
            return
        self._backend.note_result(pid)
        self._replay_spans(job, envelope)
        self._collect_spans(envelope)
        if envelope.get("ok"):
            self.queue.mark_done(job, envelope)
        else:
            job.envelope = envelope
            result = envelope.get("result") or {}
            self.queue.mark_failed(
                job, str(result.get("error", "job failed")), code="job_error"
            )
        self._after_terminal()

    def _after_terminal(self) -> None:
        assert self.queue is not None
        served = self.queue.counters["done"] + self.queue.counters["failed"]
        if (
            self.max_requests is not None
            and served >= self.max_requests
            and not self._draining
        ):
            self._draining = True
            asyncio.ensure_future(self._drain_then_stop())

    async def _drain_then_stop(self, grace_s: float = 10.0) -> None:
        """Stop once every finished job's result has reached a client.

        Closing the listening socket the instant the last job completes
        would race the client still polling ``GET /v1/jobs/<id>`` for
        its envelope; wait (bounded by ``grace_s``) until each terminal
        job has been collected at least once.
        """
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline:
            uncollected = [
                job
                for job in self.queue._jobs.values()
                if job.terminal and not job.collected
            ]
            if not uncollected:
                break
            await asyncio.sleep(0.05)
        self._stop.set()

    def _collect_spans(self, envelope: Dict[str, Any]) -> None:
        if self.trace_path:
            self._span_payloads.extend(
                envelope.get("telemetry", {}).get("spans") or []
            )

    def _replay_spans(self, job: ServiceJob, envelope: Dict[str, Any]) -> None:
        """Forward the job's span tree to its SSE subscribers.

        The single-thread backend streamed spans live from a tracer
        listener; worker processes ship the tree back with the result
        instead, and it is replayed here (flattened, parents first)
        before the ``result`` frame.
        """
        if not job.subscribers:
            return
        spans = (envelope.get("telemetry") or {}).get("spans") or []
        stack = list(reversed(spans))
        while stack:
            payload = stack.pop()
            self.queue.publish(job, {
                "event": "span",
                "data": {
                    "name": payload.get("name"),
                    "duration": payload.get("duration"),
                    "attrs": payload.get("attrs", {}),
                },
            })
            stack.extend(reversed(payload.get("children") or []))

    # ------------------------------------------------------------------ #
    # HTTP front end
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            await self._route(method, path, headers, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            return method, path, headers, b"__TOO_LARGE__"
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _error(
        self,
        writer: asyncio.StreamWriter,
        body: ErrorBody,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        await self._respond(writer, body.status, body.as_dict(), extra_headers)

    @staticmethod
    def _match(method: str, path: str) -> Tuple[Optional[str], Optional[str]]:
        """Resolve a normalized (version-stripped) path to a route name."""
        if path == "/health":
            return ("health" if method == "GET" else "method_not_allowed"), None
        if path == "/stats":
            return ("stats" if method == "GET" else "method_not_allowed"), None
        if path == "/shutdown":
            return (
                "shutdown" if method == "POST" else "method_not_allowed"
            ), None
        if path == "/jobs":
            if method == "POST":
                return "submit", None
            if method == "GET":
                return "list", None
            return "method_not_allowed", None
        if path.startswith("/jobs/"):
            job_id, _, tail = path[len("/jobs/"):].partition("/")
            if tail == "" and method == "GET":
                return "job", job_id
            if tail == "events" and method == "GET":
                return "events", job_id
            if tail in ("", "events"):
                return "method_not_allowed", None
        return None, None

    def _note_deprecated(self, path: str) -> None:
        self.deprecated_hits[path] = self.deprecated_hits.get(path, 0) + 1
        telemetry.count("service.deprecated_route")

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        assert self.queue is not None
        url = urlsplit(path)
        raw_path, query = url.path, parse_qs(url.query)
        versioned = raw_path == API_PREFIX or raw_path.startswith(
            API_PREFIX + "/"
        )
        norm = raw_path[len(API_PREFIX):] if versioned else raw_path
        hdrs: Optional[Dict[str, str]] = None
        route, arg = self._match(method, norm)
        if route is not None and not versioned:
            # A matched legacy alias: same handler, same bytes, plus the
            # migration signal.
            self._note_deprecated(norm)
            hdrs = dict(_DEPRECATION_HEADERS)
        if body == b"__TOO_LARGE__":
            await self._error(writer, ErrorBody(
                "request body too large", "payload_too_large",
                {"max_bytes": MAX_BODY_BYTES},
            ), hdrs)
            return
        if route is None:
            await self._error(writer, ErrorBody(
                f"no route for {method} {raw_path}", "not_found"), hdrs)
            return
        if route == "method_not_allowed":
            await self._error(writer, ErrorBody(
                f"method {method} not allowed on {norm}",
                "method_not_allowed",
            ), hdrs)
            return
        if route == "health":
            from .. import __version__

            await self._respond(writer, 200, {
                "status": "ok",
                "version": __version__,
                "api": API_PREFIX,
                "uptime_s": time.time() - (self.started_at or time.time()),
            }, hdrs)
            return
        if route == "stats":
            await self._respond(writer, 200, self._stats_envelope(), hdrs)
            return
        if route == "shutdown":
            await self._respond(writer, 200, {"status": "stopping"}, hdrs)
            self._stop.set()
            return
        if route == "submit":
            await self._submit(headers, body, writer, hdrs)
            return
        if route == "list":
            await self._list_jobs(query, writer, hdrs)
            return
        # job status / SSE stream
        try:
            job = self.queue.get(arg or "")
        except UnknownJobError as exc:
            await self._error(writer, ErrorBody(
                str(exc.message or exc), "unknown_job"), hdrs)
            return
        if route == "events":
            await self._stream_events(job, writer)
            return
        await self._respond(
            writer, 200, JobStatus.from_job(job).as_dict(), hdrs
        )
        if job.terminal:
            job.collected = True

    def _executor_stats(self) -> Dict[str, Any]:
        stats = (
            self._backend.stats() if self._backend is not None
            else {"backend": "none"}
        )
        stats["in_flight"] = len(self._active)
        return stats

    def _stats_envelope(self) -> Dict[str, Any]:
        result = StatsResponse(
            uptime_s=time.time() - (self.started_at or time.time()),
            commands=list(SERVICE_COMMANDS),
            executor=self._executor_stats(),
            deprecated={
                "hits": sum(self.deprecated_hits.values()),
                "by_route": dict(sorted(self.deprecated_hits.items())),
            },
            **self.queue.stats(),
        )
        return build_envelope(
            "stats",
            result.as_dict(),
            telemetry.telemetry_snapshot([]),
            active_cache_section(),
        )

    async def _submit(
        self,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
        hdrs: Optional[Dict[str, str]],
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._error(writer, ErrorBody(
                f"bad JSON body: {exc}", "bad_json"), hdrs)
            return
        try:
            request = SubmitRequest.parse(payload, headers)
        except ProtocolError as exc:
            await self._error(writer, exc.body, hdrs)
            return
        try:
            job = self.queue.submit(
                request.command, request.payload, request.tenant
            )
        except QuotaExceededError as exc:
            await self._error(writer, ErrorBody(
                str(exc.message or exc), "quota_exceeded",
                {"tenant": request.tenant},
            ), hdrs)
            return
        except ReproError as exc:
            await self._error(writer, ErrorBody(
                exc.diagnostic(), "job_error"), hdrs)
            return
        await self._respond(
            writer, 202, SubmitAccepted.from_job(job).as_dict(), hdrs
        )

    async def _list_jobs(
        self,
        query: Dict[str, list],
        writer: asyncio.StreamWriter,
        hdrs: Optional[Dict[str, str]],
    ) -> None:
        tenant = (query.get("tenant") or [None])[0]
        try:
            limit = int((query.get("limit") or [50])[0])
            offset = int((query.get("offset") or [0])[0])
        except ValueError:
            await self._error(writer, ErrorBody(
                "limit and offset must be integers", "invalid_field",
                {"field": "limit/offset"},
            ), hdrs)
            return
        if limit < 1 or limit > MAX_LIST_LIMIT or offset < 0:
            await self._error(writer, ErrorBody(
                f"limit must be in [1, {MAX_LIST_LIMIT}] and offset >= 0",
                "invalid_field",
                {"field": "limit/offset"},
            ), hdrs)
            return
        total, page = self.queue.list_jobs(tenant, limit, offset)
        listing = JobListing(
            jobs=[JobStatus.from_job(job, include_envelope=False)
                  for job in page],
            total=total,
            limit=limit,
            offset=offset,
            tenant=tenant,
        )
        await self._respond(writer, 200, listing.as_dict(), hdrs)

    async def _stream_events(
        self, job: ServiceJob, writer: asyncio.StreamWriter
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()

        def frame(event: Dict[str, Any]) -> bytes:
            data = json.dumps(event["data"], default=str)
            return f"event: {event['event']}\ndata: {data}\n\n".encode("utf-8")

        if job.terminal:
            payload = job.describe()
            if job.envelope is not None:
                payload["envelope"] = job.envelope
            writer.write(frame({"event": "result", "data": payload}))
            await writer.drain()
            job.collected = True
            return
        subscriber = self.queue.subscribe(job)
        try:
            writer.write(frame({"event": "status", "data": job.describe()}))
            await writer.drain()
            while True:
                event = await subscriber.get()
                if event is None:
                    break
                writer.write(frame(event))
                await writer.drain()
                if event.get("event") == "result":
                    job.collected = True
                    break
        finally:
            self.queue.unsubscribe(job, subscriber)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_dir: Optional[str] = None,
    memory_entries: int = 128,
    workers: int = 1,
    default_quota: Optional[TenantQuota] = None,
    quotas: Optional[Dict[str, TenantQuota]] = None,
    trace_path: Optional[str] = None,
) -> Server:
    """Build a :class:`Server` with a store rooted at ``store_dir``.

    Does not start it — call :meth:`Server.run` (blocking),
    :meth:`Server.run_async`, or :meth:`Server.start_in_thread`.
    """
    store = ArtifactStore(root=store_dir, memory_entries=memory_entries)
    return Server(
        host=host,
        port=port,
        store=store,
        workers=workers,
        default_quota=default_quota,
        quotas=quotas,
        trace_path=trace_path,
    )


__all__ = ["MAX_BODY_BYTES", "MAX_LIST_LIMIT", "Server", "serve"]
