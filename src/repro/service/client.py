"""Minimal stdlib client for the fingerprinting service's ``/v1`` API.

Wraps ``http.client`` so tests, the smoke script, the load harness and
the store benchmark can talk to a running
:class:`~repro.service.server.Server` without any HTTP dependency::

    client = ServiceClient(port=port)
    submitted = client.submit("batch", design=c17_verilog,
                              format="verilog", n_copies=4)
    envelope = client.wait(submitted["job_id"])
    assert envelope["cache"]["warm"]["catalog"]

The constructor is keyword-only; the pre-``/v1`` positional form
(``ServiceClient("127.0.0.1", port, timeout)``) still works but emits a
:class:`DeprecationWarning`.  ``api_version="legacy"`` pins the client
to the deprecated unversioned routes (used by the parity tests).

Quota rejections (HTTP 429, code ``quota_exceeded``) are retried with
exponential backoff up to ``retry_429`` times before the error is
re-raised — a load shedder's 429 is an invitation to come back, not a
failure.  Every other non-2xx response raises
:class:`ServiceHttpError` immediately, with the decoded error payload
attached (machine-readable ``code`` included).
"""

from __future__ import annotations

import json
import time
import warnings
from http.client import HTTPConnection
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Known API surfaces → path prefix.
_API_PREFIXES = {"v1": "/v1", "legacy": ""}


class ServiceHttpError(RuntimeError):
    """A non-2xx service response (status + decoded body).

    ``payload`` is the decoded error body; for ``/v1`` errors it carries
    the machine-readable ``code`` clients should dispatch on.
    """

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload

    @property
    def code(self) -> Optional[str]:
        """The machine-readable error code, when the body carries one."""
        if isinstance(self.payload, dict):
            return self.payload.get("code")
        return None


class ServiceClient:
    """Blocking JSON client for one service endpoint (see module doc).

    Args:
        host/port: Service address.
        timeout: Socket timeout per request, seconds.
        api_version: ``"v1"`` (default) or ``"legacy"`` for the
            deprecated unversioned aliases.
        retry_429: How many times a quota-rejected submission is retried
            (exponential backoff, ``backoff_s`` base) before the 429 is
            raised.  0 disables retrying.
        backoff_s: Base sleep of the 429 backoff; attempt *n* sleeps
            ``backoff_s * 2**n``.
    """

    def __init__(
        self,
        *args: Any,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 120.0,
        api_version: str = "v1",
        retry_429: int = 3,
        backoff_s: float = 0.05,
    ) -> None:
        if args:
            # Pre-/v1 call shape: ServiceClient(host, port, timeout).
            warnings.warn(
                "positional ServiceClient arguments are deprecated; "
                "use ServiceClient(host=..., port=..., timeout=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 3:
                raise TypeError(
                    f"ServiceClient takes at most 3 positional arguments "
                    f"({len(args)} given)"
                )
            for name, value in zip(("host", "port", "timeout"), args):
                if name == "host":
                    host = value
                elif name == "port":
                    port = value
                else:
                    timeout = value
        if api_version not in _API_PREFIXES:
            raise ValueError(
                f"api_version must be one of {sorted(_API_PREFIXES)}, "
                f"got {api_version!r}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.api_version = api_version
        self.retry_429 = retry_429
        self.backoff_s = backoff_s
        self._prefix = _API_PREFIXES[api_version]

    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok: tuple = (200, 202),
    ) -> Any:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(
                method, self._prefix + path, body=payload, headers=headers
            )
            response = connection.getresponse()
            raw = response.read().decode("utf-8")
            decoded = json.loads(raw) if raw else None
            if response.status not in ok:
                raise ServiceHttpError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------ #

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(self, command: str, **payload: Any) -> Dict[str, Any]:
        """POST a job; returns the 202 body (``job_id``, ``stream`` …).

        A 429 (tenant quota) is retried up to ``retry_429`` times with
        exponential backoff before being raised.
        """
        payload["command"] = command
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body=payload)
            except ServiceHttpError as exc:
                if exc.status != 429 or attempt >= self.retry_429:
                    raise
                time.sleep(self.backoff_s * (2 ** attempt))
                attempt += 1

    def submit_many(
        self, submissions: Sequence[Tuple[str, Dict[str, Any]]]
    ) -> List[Dict[str, Any]]:
        """Submit ``(command, payload)`` pairs; returns the 202 bodies.

        Sequential (the service itself provides the concurrency); each
        submission gets the same 429 retry treatment as :meth:`submit`.
        """
        return [
            self.submit(command, **dict(payload))
            for command, payload in submissions
        ]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(
        self,
        tenant: Optional[str] = None,
        limit: int = 50,
        offset: int = 0,
    ) -> Dict[str, Any]:
        """``GET /v1/jobs`` — paginated listing, optionally per tenant."""
        query = f"?limit={limit}&offset={offset}"
        if tenant is not None:
            from urllib.parse import quote

            query += f"&tenant={quote(tenant)}"
        return self._request("GET", f"/jobs{query}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its result envelope.

        Raises :class:`ServiceHttpError` (status 500) when the job
        failed, with the error envelope as the payload.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] == "done":
                return status["envelope"]
            if status["status"] == "failed":
                raise ServiceHttpError(500, status.get("envelope") or status)
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {status['status']!r} "
                                   f"after {timeout}s")
            time.sleep(poll_s)

    def run(self, command: str, **payload: Any) -> Dict[str, Any]:
        """Submit and wait — one warm/cold submission round trip."""
        submitted = self.submit(command, **payload)
        return self.wait(submitted["job_id"])

    def shutdown(self) -> Dict[str, Any]:
        """``POST /v1/shutdown`` — ask the service to drain and stop."""
        return self._request("POST", "/shutdown")

    def events(self, job_id: str, timeout: float = 300.0
               ) -> Iterator[Dict[str, Any]]:
        """Stream the job's server-sent events until its result frame.

        Yields ``{"event": <name>, "data": <decoded JSON>}`` dicts,
        ending with (and including) the ``result`` event.
        """
        connection = HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            connection.request("GET", f"{self._prefix}/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read().decode("utf-8")
                raise ServiceHttpError(
                    response.status, json.loads(raw) if raw else None
                )
            event: Dict[str, Any] = {}
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    event["event"] = line[len("event: "):]
                elif line.startswith("data: "):
                    event["data"] = json.loads(line[len("data: "):])
                elif not line and event:
                    yield dict(event)
                    if event.get("event") == "result":
                        return
                    event = {}
        finally:
            connection.close()


__all__ = ["ServiceClient", "ServiceHttpError"]
