"""Minimal stdlib client for the fingerprinting service.

Wraps ``http.client`` so tests, the smoke script, and the store
benchmark can talk to a running :class:`~repro.service.server.Server`
without any HTTP dependency::

    client = ServiceClient("127.0.0.1", port)
    submitted = client.submit("batch", design=c17_verilog,
                              format="verilog", n_copies=4)
    envelope = client.wait(submitted["job_id"])
    assert envelope["cache"]["warm"]["catalog"]

Every method raises :class:`ServiceHttpError` on a non-2xx response,
with the decoded error payload attached.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Dict, Iterator, Optional


class ServiceHttpError(RuntimeError):
    """A non-2xx service response (status + decoded body)."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking JSON client for one service endpoint (see module doc)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok: tuple = (200, 202),
    ) -> Any:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read().decode("utf-8")
            decoded = json.loads(raw) if raw else None
            if response.status not in ok:
                raise ServiceHttpError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------ #

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(self, command: str, **payload: Any) -> Dict[str, Any]:
        """POST a job; returns the 202 body (``job_id``, ``stream`` …)."""
        payload["command"] = command
        return self._request("POST", "/jobs", body=payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its result envelope.

        Raises :class:`ServiceHttpError` (status 500) when the job
        failed, with the error envelope as the payload.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] == "done":
                return status["envelope"]
            if status["status"] == "failed":
                raise ServiceHttpError(500, status.get("envelope") or status)
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {status['status']!r} "
                                   f"after {timeout}s")
            time.sleep(poll_s)

    def run(self, command: str, **payload: Any) -> Dict[str, Any]:
        """Submit and wait — one warm/cold submission round trip."""
        submitted = self.submit(command, **payload)
        return self.wait(submitted["job_id"])

    def events(self, job_id: str, timeout: float = 300.0
               ) -> Iterator[Dict[str, Any]]:
        """Stream the job's server-sent events until its result frame.

        Yields ``{"event": <name>, "data": <decoded JSON>}`` dicts,
        ending with (and including) the ``result`` event.
        """
        connection = HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read().decode("utf-8")
                raise ServiceHttpError(
                    response.status, json.loads(raw) if raw else None
                )
            event: Dict[str, Any] = {}
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    event["event"] = line[len("event: "):]
                elif line.startswith("data: "):
                    event["data"] = json.loads(line[len("data: "):])
                elif not line and event:
                    yield dict(event)
                    if event.get("event") == "result":
                        return
                    event = {}
        finally:
            connection.close()


__all__ = ["ServiceClient", "ServiceHttpError"]
