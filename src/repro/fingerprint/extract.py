"""Fingerprint extraction from a suspect netlist (paper §III.E).

The IP owner holds the golden design and the location catalog; extraction
compares each slot's target gate in the suspect against the original and
recognizes which variant (if any) is present.  This is the "trivial for
the designer" direction of the paper's security analysis — and it works on
a verbatim copy of the netlist, which is exactly the heredity requirement:
copying the design copies the fingerprint.

Tampered slots (structures matching no variant) are reported rather than
guessed, supporting the collusion-tracing workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist.circuit import Circuit, NetlistError
from .locations import LocationCatalog
from .modifications import Slot, inverter_index, realized_signature


@dataclass(frozen=True)
class ExtractionResult:
    """Outcome of reading a suspect circuit's fingerprint."""

    assignment: Dict[str, int]
    tampered: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """True when every slot decoded to a known configuration."""
        return not self.tampered


def _observed_key(
    suspect: Circuit, base: Circuit, net: str
) -> Optional[Tuple[str, str]]:
    """Realized-literal key of one added input (see ``realized_signature``).

    A net of the original design reads as ``("net", net)``; a net absent
    from the base reads as ``("inv", source)`` when it is a fresh inverter
    of an original net; anything else is unrecognizable (tampering).
    """
    if base.has_net(net):
        return ("net", net)
    driver = suspect.driver(net)
    if driver is not None and driver.kind == "INV" and base.has_net(driver.inputs[0]):
        return ("inv", driver.inputs[0])
    return None


def _match_variant(
    suspect: Circuit,
    base: Circuit,
    slot: Slot,
    original_inputs: Tuple[str, ...],
    inverters: Dict[str, str],
) -> Optional[int]:
    """Identify the variant realized at ``slot.target``; None = tampered."""
    try:
        gate = suspect.gate(slot.target)
    except NetlistError:
        return None
    if gate.kind == slot.target_kind and gate.inputs == original_inputs:
        return 0
    if tuple(gate.inputs[: len(original_inputs)]) != original_inputs:
        return None
    extra = gate.inputs[len(original_inputs):]
    observed_keys = []
    for net in extra:
        key = _observed_key(suspect, base, net)
        if key is None:
            return None
        observed_keys.append(key)
    observed = (gate.kind, tuple(sorted(observed_keys)))
    for index, variant in enumerate(slot.variants, start=1):
        if observed == realized_signature(base, variant, inverters):
            return index
    return None


def extract(
    suspect: Circuit,
    base: Circuit,
    catalog: LocationCatalog,
) -> ExtractionResult:
    """Read the fingerprint configuration out of ``suspect``.

    ``base`` is the golden (unfingerprinted) design the catalog was built
    on.  Slots whose structure matches no known configuration are listed
    in ``tampered`` and reported as configuration 0.
    """
    assignment: Dict[str, int] = {}
    tampered: List[str] = []
    targets = frozenset(slot.target for slot in catalog.slots())
    inverters = inverter_index(base, excluded=targets)
    for slot in catalog.slots():
        original = base.gate(slot.target)
        matched = _match_variant(suspect, base, slot, original.inputs, inverters)
        if matched is None:
            tampered.append(slot.target)
            assignment[slot.target] = 0
        else:
            assignment[slot.target] = matched
    return ExtractionResult(assignment=assignment, tampered=tuple(tampered))


def fingerprints_distinct(
    left: ExtractionResult, right: ExtractionResult
) -> bool:
    """True when two extracted fingerprints differ in some slot."""
    return left.assignment != right.assignment
