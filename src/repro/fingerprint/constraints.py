"""Overhead-constrained fingerprinting heuristics (paper §III.D, §IV.B).

Two strategies from the paper:

* **Reactive** — start from a fully fingerprinted circuit and repeatedly
  remove the modification whose removal most reduces the critical delay,
  falling back to random removals when no single removal helps (the paper
  does exactly this), until the delay constraint is met or no
  modifications remain.  Candidate removals are pruned to modifications
  touching the current critical path: removing anything else cannot
  shorten the critical path, so the pruning is lossless.

* **Proactive** — rank candidate modifications by how much slack their
  trigger and target nets have, then apply them one by one, keeping only
  those that leave the circuit within the delay budget.  This is the
  scalable "analyze before applying" method the paper describes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..netlist.circuit import Circuit
from ..timing.delay_models import DelayModel
from ..timing.sta import analyze, critical_delay
from .capacity import capacity
from .embed import FingerprintedCircuit, representative_slots
from .locations import LocationCatalog


@dataclass
class ConstraintResult:
    """Outcome of a constrained fingerprinting run.

    ``kept``/``removed`` count location-level modifications; the
    ``fingerprint_reduction`` matches the paper's Table III metric
    (fraction of modifications sacrificed).  ``surviving_bits`` is the
    capacity of the slots still active — the fingerprint size after the
    constraint, plotted in the paper's Fig. 7.

    For the generalized :func:`reactive_constrain`, ``baseline_delay`` and
    ``final_delay`` hold the *constrained metric's* baseline and final
    values (area or power when those metrics are selected).
    """

    fingerprinted: FingerprintedCircuit
    constraint: float
    baseline_delay: float
    final_delay: float
    initial_active: int
    kept: int
    removed: int
    surviving_bits: float
    met_constraint: bool
    steps: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fingerprint_reduction(self) -> float:
        """Fraction of modifications removed (0.49 = 49%)."""
        if self.initial_active == 0:
            return 0.0
        return self.removed / self.initial_active


def _surviving_bits(fp: FingerprintedCircuit) -> float:
    """Capacity (bits) of locations that still carry a modification.

    A location "survives" when at least one of its slots is still active;
    its full configuration space then remains usable for future copies, so
    the surviving fingerprint size is the sum of log2(configurations) over
    surviving locations — directly comparable to the unconstrained
    capacity of the whole catalog (paper Fig. 7).
    """
    applied = fp.applied
    bits = 0.0
    for location in fp.catalog:
        if any(applied.get(slot.target) for slot in location.slots):
            bits += math.log2(location.n_configurations)
    return bits


def _candidates_on_critical_path(
    fp: FingerprintedCircuit, critical_nets: set
) -> List[str]:
    """Active modifications that can influence the current critical path.

    A modification matters when its target gate, any of the target's
    current inputs, its trigger net, or any tapped literal source lies on
    the critical path — removing anything else cannot shorten it (the
    driver-side wire penalty lives on the literal sources' drivers).
    """
    candidates = []
    for target, variant_index in fp.applied.items():
        slot = fp.slot(target)
        variant = slot.variants[variant_index - 1]
        gate = fp.circuit.gate(target)
        relevant = (
            target in critical_nets
            or slot.trigger in critical_nets
            or any(n in critical_nets for n in gate.inputs)
            or any(l.net in critical_nets for l in variant.literals)
        )
        if relevant:
            candidates.append(target)
    return candidates


def reactive_delay_constrain(
    fp: FingerprintedCircuit,
    max_delay_overhead: float,
    delay_model: Optional[DelayModel] = None,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> ConstraintResult:
    """Prune modifications from ``fp`` in place until the delay fits.

    ``max_delay_overhead`` is a fraction of the baseline critical delay
    (0.10 = the paper's "10% delay constraint").
    """
    rng = random.Random(seed)
    baseline = critical_delay(fp.base, delay_model)
    budget = baseline * (1.0 + max_delay_overhead)
    initial_active = fp.n_active
    steps: List[Tuple[str, str]] = []

    current = critical_delay(fp.circuit, delay_model)
    while fp.n_active > 0 and current > budget + tolerance:
        report = analyze(fp.circuit, delay_model)
        critical_nets = set(report.critical_path)
        candidates = _candidates_on_critical_path(fp, critical_nets)
        best_target: Optional[str] = None
        best_delay = current
        for target in candidates:
            variant_index = fp.applied[target]
            fp.remove(target)
            trial = critical_delay(fp.circuit, delay_model)
            if trial < best_delay - tolerance:
                best_delay = trial
                best_target = target
            fp.apply(target, variant_index)
        if best_target is not None:
            fp.remove(best_target)
            steps.append(("greedy", best_target))
            current = best_delay
        else:
            # Paper §IV.B: no single removal reduces the delay — remove a
            # random modification and keep going.
            target = rng.choice(sorted(fp.applied))
            fp.remove(target)
            steps.append(("random", target))
            current = critical_delay(fp.circuit, delay_model)

    return ConstraintResult(
        fingerprinted=fp,
        constraint=max_delay_overhead,
        baseline_delay=baseline,
        final_delay=current,
        initial_active=initial_active,
        kept=fp.n_active,
        removed=initial_active - fp.n_active,
        surviving_bits=_surviving_bits(fp),
        met_constraint=current <= budget + tolerance,
        steps=steps,
    )


#: Metric extractors for the generalized reactive method (§III.D: "whether
#: it be area, delay, power, or something else").
_METRICS = {
    "delay": lambda circuit, model: critical_delay(circuit, model),
    "area": lambda circuit, model: sum(g.cell.area for g in circuit.gates),
    "power": lambda circuit, model: _power_of(circuit),
}


def _power_of(circuit: Circuit) -> float:
    from ..power.estimate import total_power

    return total_power(circuit)


def reactive_constrain(
    fp: FingerprintedCircuit,
    metric: str,
    max_overhead: float,
    delay_model: Optional[DelayModel] = None,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> ConstraintResult:
    """Generalized reactive pruning for any supported cost metric.

    ``metric`` is one of ``"delay"``, ``"area"`` or ``"power"``.  Delay
    uses the critical-path-pruned search of
    :func:`reactive_delay_constrain`; area and power are monotone in the
    modification set, so each greedy step simply removes the single
    modification whose removal reduces the metric most.
    """
    if metric == "delay":
        return reactive_delay_constrain(
            fp, max_overhead, delay_model=delay_model, seed=seed,
            tolerance=tolerance,
        )
    try:
        evaluate = _METRICS[metric]
    except KeyError:
        raise ValueError(f"unsupported metric {metric!r}")
    rng = random.Random(seed)
    baseline = evaluate(fp.base, delay_model)
    budget = baseline * (1.0 + max_overhead)
    initial_active = fp.n_active
    steps: List[Tuple[str, str]] = []

    current = evaluate(fp.circuit, delay_model)
    while fp.n_active > 0 and current > budget + tolerance:
        best_target: Optional[str] = None
        best_value = current
        for target in sorted(fp.applied):
            variant_index = fp.applied[target]
            fp.remove(target)
            trial = evaluate(fp.circuit, delay_model)
            if trial < best_value - tolerance:
                best_value = trial
                best_target = target
            fp.apply(target, variant_index)
        if best_target is not None:
            fp.remove(best_target)
            steps.append(("greedy", best_target))
            current = best_value
        else:
            target = rng.choice(sorted(fp.applied))
            fp.remove(target)
            steps.append(("random", target))
            current = evaluate(fp.circuit, delay_model)

    return ConstraintResult(
        fingerprinted=fp,
        constraint=max_overhead,
        baseline_delay=baseline,
        final_delay=current,
        initial_active=initial_active,
        kept=fp.n_active,
        removed=initial_active - fp.n_active,
        surviving_bits=_surviving_bits(fp),
        met_constraint=current <= budget + tolerance,
        steps=steps,
    )


def proactive_delay_constrain(
    base: Circuit,
    catalog: LocationCatalog,
    max_delay_overhead: float,
    delay_model: Optional[DelayModel] = None,
    variant_index: int = 1,
) -> ConstraintResult:
    """Build a fingerprint copy that never exceeds the delay budget.

    Candidate modifications (one representative slot per location, as in
    the paper's main flow) are sorted by decreasing slack of their target
    gate in the baseline circuit, so the cheapest modifications are tried
    first; each application is kept only if the measured delay stays
    within budget.
    """
    baseline_report = analyze(base, delay_model)
    baseline = baseline_report.critical_delay
    budget = baseline * (1.0 + max_delay_overhead)
    slots = representative_slots(base, catalog)
    candidates = sorted(
        slots,
        key=lambda s: (-baseline_report.slack(s.target), s.target),
    )
    fp = FingerprintedCircuit(base, catalog)
    steps: List[Tuple[str, str]] = []
    for slot in candidates:
        index = min(variant_index, len(slot.variants))
        fp.apply(slot.target, index)
        if critical_delay(fp.circuit, delay_model) > budget:
            fp.remove(slot.target)
            steps.append(("rejected", slot.target))
        else:
            steps.append(("accepted", slot.target))
    final = critical_delay(fp.circuit, delay_model)
    total = len(candidates)
    return ConstraintResult(
        fingerprinted=fp,
        constraint=max_delay_overhead,
        baseline_delay=baseline,
        final_delay=final,
        initial_active=total,
        kept=fp.n_active,
        removed=total - fp.n_active,
        surviving_bits=_surviving_bits(fp),
        met_constraint=final <= budget,
        steps=steps,
    )
