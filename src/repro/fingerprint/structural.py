"""Rename-robust fingerprint extraction via structural matching.

Name-based extraction (:mod:`repro.fingerprint.extract`) assumes the
suspect netlist kept the golden design's net names — true for verbatim
layout copies, but a pirate can rename every wire for free.  Renaming
does not change *structure*, and the ports are physically pinned (an IP
consumer connects to the pads, so PI/PO identities survive).  This module
matches the suspect's gates to the golden design's gates by propagating
correspondences forward from the primary inputs, tolerating exactly the
kinds of local edits fingerprint variants make:

* a matched gate may have **extra inputs** beyond the golden gate's
  (the ODC trigger literals), possibly via new inverters;
* a single-input golden gate (INV/BUF) may appear **widened** to the
  NAND/NOR/AND/OR form its variants use.

The result maps suspect nets to golden nets; ``extract_structural`` then
runs the ordinary variant recognition over the translated netlist.  The
matcher is deterministic and linear-ish (keyed candidate lookup), not a
general graph-isomorphism search — which suffices because the anchored
DAG correspondence is unique up to identical twin gates, which strashing
removes from our mapped netlists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..netlist.circuit import Circuit, Gate
from .extract import ExtractionResult, extract
from .locations import LocationCatalog

#: Widened forms a unary golden gate may take in a fingerprinted suspect.
_UNARY_WIDENED = {
    "INV": ("NAND", "NOR"),
    "BUF": ("AND", "OR"),
}


def match_nets(
    golden: Circuit,
    suspect: Circuit,
    slot_targets: Optional[Set[str]] = None,
) -> Dict[str, str]:
    """Map suspect net names to golden net names.

    Anchored at the primary inputs (matched positionally) and propagated
    topologically: a suspect gate corresponds to a golden gate when its
    kind is the golden kind (or a legal widening of it) and the golden
    gate's inputs all appear, translated, among the suspect gate's inputs.
    Gates that match nothing (fingerprint inverters, adversarial logic)
    stay unmapped.  Raises ``ValueError`` on port-interface mismatch.
    """
    if len(golden.inputs) != len(suspect.inputs):
        raise ValueError("primary input counts differ")
    if len(golden.outputs) != len(suspect.outputs):
        raise ValueError("primary output counts differ")

    to_golden: Dict[str, str] = {}
    for golden_name, suspect_name in zip(golden.inputs, suspect.inputs):
        to_golden[suspect_name] = golden_name

    # Candidate index: golden gates keyed by (kind-or-base, arity class).
    golden_by_kind: Dict[str, List[Gate]] = {}
    for gate in golden.topological_order():
        golden_by_kind.setdefault(gate.kind, []).append(gate)

    matched_golden: Set[str] = set()

    # Primary outputs are physically pinned like the inputs, so their
    # driving gates correspond positionally up front.  This also resolves
    # the one kind of structural twin a deduplicated design may keep: two
    # identical gates that must both exist because both drive ports.
    for golden_po, suspect_po in zip(golden.outputs, suspect.outputs):
        if golden.driver(golden_po) is None or suspect.driver(suspect_po) is None:
            continue  # feed-through port; the PI seeding covers it
        if suspect_po not in to_golden and golden_po not in matched_golden:
            to_golden[suspect_po] = golden_po
            matched_golden.add(golden_po)

    def golden_candidates(suspect_gate: Gate) -> List[Gate]:
        kinds = [suspect_gate.kind]
        for unary, widened in _UNARY_WIDENED.items():
            if suspect_gate.kind in widened:
                kinds.append(unary)
        out: List[Gate] = []
        for kind in kinds:
            out.extend(golden_by_kind.get(kind, ()))
        return out

    targets = slot_targets or set()

    def try_match(
        suspect_gate: Gate, exact_only: bool, targets_only: Optional[bool] = None
    ) -> bool:
        translated = [to_golden.get(n) for n in suspect_gate.inputs]
        known = [t for t in translated if t is not None]
        if not known:
            return False
        known_multiset = sorted(known)
        for candidate in golden_candidates(suspect_gate):
            if candidate.name in matched_golden:
                continue
            if targets_only is not None and (candidate.name in targets) != targets_only:
                continue
            needed = sorted(candidate.inputs)
            if exact_only:
                # Untouched gate: same kind, identical input multiset.
                if (
                    candidate.kind == suspect_gate.kind
                    and len(known) == suspect_gate.n_inputs
                    and known_multiset == needed
                ):
                    to_golden[suspect_gate.name] = candidate.name
                    matched_golden.add(candidate.name)
                    return True
                continue
            # Modified gate: embedding appends trigger literals after the
            # original inputs, so the golden inputs must appear as the
            # translated *prefix* of the suspect's inputs, and the kind
            # change must be a legal widening.  (Prefix, not subset:
            # subset matching cross-assigns widened inverters whose added
            # literal is another inverter's source.)
            if len(candidate.inputs) >= suspect_gate.n_inputs:
                prefix_ok = False
            else:
                prefix_ok = all(
                    translated[i] == candidate.inputs[i]
                    for i in range(len(candidate.inputs))
                )
            if not prefix_ok:
                continue
            widening = (
                candidate.kind == suspect_gate.kind
                and suspect_gate.n_inputs > candidate.n_inputs
            ) or (
                candidate.kind in _UNARY_WIDENED
                and suspect_gate.kind in _UNARY_WIDENED[candidate.kind]
            )
            if not widening:
                continue
            to_golden[suspect_gate.name] = candidate.name
            matched_golden.add(candidate.name)
            return True
        return False

    order = suspect.topological_order()

    def run_pass(exact_only: bool, targets_only: Optional[bool], single: bool = False) -> bool:
        made = False
        for suspect_gate in order:
            if suspect_gate.name in to_golden:
                continue
            if try_match(suspect_gate, exact_only, targets_only):
                made = True
                if single:
                    return True
        return made

    # Exact matches are unambiguous (the catalog construction guarantees
    # no fingerprint inverter can impersonate a slot target), so exhaust
    # them to a fixpoint before admitting a single widened match — a
    # widened match taken too early, while a gate's inputs are still
    # unmapped, can steal a slot target from its true counterpart.
    while True:
        while run_pass(True, False) or run_pass(True, True):
            pass
        if run_pass(False, True, single=True):
            continue
        if run_pass(False, None, single=True):
            continue
        break
    # Primary outputs are pinned too: use them to resolve any PO driver
    # that structural propagation could not disambiguate.
    for golden_po, suspect_po in zip(golden.outputs, suspect.outputs):
        current = to_golden.get(suspect_po)
        if current is None:
            to_golden[suspect_po] = golden_po
    return to_golden


def _multiset_contains(haystack: List[str], needles: List[str]) -> bool:
    position = 0
    for needle in needles:
        while position < len(haystack) and haystack[position] < needle:
            position += 1
        if position >= len(haystack) or haystack[position] != needle:
            return False
        position += 1
    return True


def rename_to_golden(
    golden: Circuit,
    suspect: Circuit,
    slot_targets: Optional[Set[str]] = None,
) -> Circuit:
    """Rebuild ``suspect`` with golden net names wherever a match exists.

    Unmatched nets (fingerprint inverters, foreign logic) get fresh
    ``um_<n>`` names so the result is a valid circuit for name-based
    extraction.
    """
    mapping = match_nets(golden, suspect, slot_targets=slot_targets)
    out = Circuit(suspect.name + "_aligned", suspect.library)
    fresh_index = 0
    renamed: Dict[str, str] = {}

    def translate(net: str) -> str:
        nonlocal fresh_index
        if net in mapping:
            return mapping[net]
        cached = renamed.get(net)
        if cached is None:
            cached = f"um_{fresh_index}"
            fresh_index += 1
            renamed[net] = cached
        return cached

    for net in suspect.inputs:
        out.add_input(translate(net))
    for gate in suspect.topological_order():
        out.add_gate(
            translate(gate.name),
            gate.kind,
            [translate(n) for n in gate.inputs],
            cell=gate.cell,
        )
    for net in suspect.outputs:
        out.add_output(translate(net))
    out.validate()
    return out


def extract_structural(
    suspect: Circuit,
    golden: Circuit,
    catalog: LocationCatalog,
) -> ExtractionResult:
    """Extraction that survives wholesale net renaming.

    Aligns the suspect to the golden design structurally, then runs the
    standard variant recognition.  The golden design must be free of
    structural twins (two gates with the same kind and input multiset):
    twins make the anchored matching ambiguous.  The IP owner controls
    the golden netlist, so the expected flow is::

        merge_duplicate_gates(design)     # strash-style dedupe, once
        catalog = find_locations(design)  # then build + embed as usual

    A golden design with twins raises ``ValueError``.
    """
    from ..netlist.transform import has_duplicate_gates

    if has_duplicate_gates(golden, ignore_output_twins=True):
        raise ValueError(
            "golden design has structural twin gates; run "
            "merge_duplicate_gates() on it before building the catalog"
        )
    targets = {slot.target for slot in catalog.slots()}
    aligned = rename_to_golden(golden, suspect, slot_targets=targets)
    return extract(aligned, golden, catalog)
