"""Fingerprint modification catalogue (paper §III.C, Figs. 4 and 5).

A *slot* is one gate inside a fingerprint location's fanout-free cone that
can absorb an ODC trigger literal; each slot offers several mutually
exclusive *variants* (which literal(s) to add and, for single-input gates,
which widened gate kind realizes the absorption).  Leaving a slot
unmodified is configuration 0, so a slot with ``m`` variants contributes
``log2(m + 1)`` fingerprint bits.

Correctness rule (generic form of the paper's lookup table): let the
primary gate P have controlling value ``c`` and let ``X`` be the trigger
input.  When ``X != c`` the cone's value must be preserved, so every added
literal must evaluate to the *identity* value of the (widened) target gate
kind; when ``X == c`` the target may change freely because P blocks the
cone (the ODC is active).  The polarity of each added literal is chosen to
satisfy exactly that.

* Direct variant (Fig. 4): add ``X`` (or ``X'``) to the target.
* Reroute variants (Fig. 5): when ``X`` is produced by a gate T whose
  controlled output equals ``c``, any input ``w`` of T at T's controlling
  value already forces ``X == c``; when ``X != c`` no input of T is
  controlling, so literals derived from one or two of T's inputs are
  identity exactly when they must be.  With ``n`` trigger-gate inputs this
  yields the paper's ``n`` single plus ``n(n-1)/2`` pair variants —
  ``n(n+1)/2`` total.  T being an inverter/buffer is handled as the
  degenerate single-input case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cells import functions
from ..cells.library import CellLibrary
from ..netlist.circuit import Circuit, Gate

#: Single-input kinds and the widened kinds that can absorb a literal.
#: ``INV(a) == NAND2(a, 1) == NOR2(a, 0)``; ``BUF(a) == AND2(a, 1) == OR2(a, 0)``.
_UNARY_WIDENINGS = {
    "INV": ("NAND", "NOR"),
    "BUF": ("AND", "OR"),
}


@dataclass(frozen=True)
class Literal:
    """A (possibly complemented) reference to an existing net."""

    net: str
    positive: bool

    def __str__(self) -> str:
        return self.net if self.positive else f"{self.net}'"


@dataclass(frozen=True)
class Variant:
    """One concrete way to modify a slot's target gate.

    ``kind`` is the gate kind after modification (differs from the target's
    original kind only for single-input targets).  ``literals`` are the
    inputs appended to the gate.  ``source`` tags the mechanism for reports
    ("direct", "reroute1", "reroute2").
    """

    kind: str
    literals: Tuple[Literal, ...]
    source: str

    def signature(self) -> Tuple:
        """Hashable identity over the literal *intent* (net, polarity)."""
        return (
            self.kind,
            tuple(sorted((l.net, l.positive) for l in self.literals)),
        )


def inverter_index(
    circuit: Circuit, excluded: Optional[frozenset] = None
) -> Dict[str, str]:
    """Map net -> name of an existing inverter of that net.

    Deterministic "first eligible wins" over the circuit's gate insertion
    order.  ``excluded`` names inverters that must not be reused — in the
    fingerprinting flow these are the catalog's slot targets: a reused
    inverter's output feeds other modifications' literals, so the gate
    itself must stay untouched (widening it would corrupt every literal
    that references it).
    """
    index: Dict[str, str] = {}
    for gate in circuit.gates:
        if gate.kind != "INV" or gate.inputs[0] in index:
            continue
        if excluded is not None and gate.name in excluded:
            continue
        index[gate.inputs[0]] = gate.name
    return index


def realized_literal_key(
    circuit: Circuit,
    literal: Literal,
    inverters: Optional[Dict[str, str]] = None,
) -> Tuple[str, str]:
    """The physical realization of one literal in ``circuit``.

    A positive literal is the net itself.  A complemented literal reuses
    an existing inverter of the net when the design has one (see
    :class:`~repro.fingerprint.embed.FingerprintedCircuit`), otherwise a
    fresh inverter is minted.  Two literals with the same realized key
    produce byte-identical netlist edits.
    """
    if literal.positive:
        return ("net", literal.net)
    if inverters is None:
        inverters = inverter_index(circuit)
    existing = inverters.get(literal.net)
    if existing is not None:
        return ("net", existing)
    return ("inv", literal.net)


def realized_signature(
    circuit: Circuit,
    variant: Variant,
    inverters: Optional[Dict[str, str]] = None,
) -> Tuple:
    """Hashable identity of the variant's *structural* outcome."""
    if inverters is None:
        inverters = inverter_index(circuit)
    return (
        variant.kind,
        tuple(
            sorted(
                realized_literal_key(circuit, l, inverters)
                for l in variant.literals
            )
        ),
    )


@dataclass(frozen=True)
class Slot:
    """A modifiable gate within one fingerprint location."""

    location_id: int
    primary: str
    target: str
    target_kind: str
    trigger: str
    trigger_value: int
    variants: Tuple[Variant, ...]

    @property
    def n_configs(self) -> int:
        """Number of configurations including "unmodified"."""
        return len(self.variants) + 1


def _literal_polarity(inactive_value: int, widened_kind: str) -> Optional[bool]:
    """Polarity so the literal equals the identity value when inactive.

    ``inactive_value`` is what the literal's source net holds whenever the
    ODC is *not* guaranteed active; the literal must then equal the widened
    kind's identity element.  Returns True for the plain net, False for its
    complement, or None when the kind has no identity (cannot absorb).
    """
    identity = functions.identity_value(widened_kind)
    if identity is None:
        return None
    return inactive_value == identity


def direct_variants(
    target: Gate,
    trigger: str,
    trigger_value: int,
    library: CellLibrary,
    allow_xor_targets: bool = False,
) -> List[Variant]:
    """Fig. 4 variants: absorb the trigger literal into ``target`` itself."""
    inactive = 1 - trigger_value
    variants: List[Variant] = []
    kind = target.kind
    if kind in _UNARY_WIDENINGS:
        if trigger in target.inputs:
            return []
        for widened in _UNARY_WIDENINGS[kind]:
            if library.try_find(widened, target.n_inputs + 1) is None:
                continue
            positive = _literal_polarity(inactive, widened)
            variants.append(
                Variant(widened, (Literal(trigger, positive),), "direct")
            )
        return variants
    eligible = functions.controlling_value(kind) is not None or (
        allow_xor_targets and kind in ("XOR", "XNOR")
    )
    if not eligible:
        return []
    if library.try_find(kind, target.n_inputs + 1) is None:
        return []
    positive = _literal_polarity(inactive, kind)
    if positive is None:
        return []
    if trigger in target.inputs:
        return []  # degenerate: literal already drives the gate
    variants.append(Variant(kind, (Literal(trigger, positive),), "direct"))
    return variants


def reroute_variants(
    circuit: Circuit,
    target: Gate,
    trigger: str,
    trigger_value: int,
    library: CellLibrary,
    allow_xor_targets: bool = False,
    max_pair_variants: int = 6,
) -> List[Variant]:
    """Fig. 5 variants: tap the trigger gate's own inputs instead of X."""
    trigger_gate = circuit.driver(trigger)
    if trigger_gate is None:
        return []
    sources, inactive = _reroute_sources(trigger_gate, trigger_value)
    if not sources:
        return []
    kind = target.kind
    widened_kinds: List[str]
    if kind in _UNARY_WIDENINGS:
        widened_kinds = [
            w
            for w in _UNARY_WIDENINGS[kind]
            if library.try_find(w, target.n_inputs + 1) is not None
        ]
    else:
        eligible = functions.controlling_value(kind) is not None or (
            allow_xor_targets and kind in ("XOR", "XNOR")
        )
        if not eligible:
            return []
        widened_kinds = [kind] if library.try_find(kind, target.n_inputs + 1) else []

    variants: List[Variant] = []
    for widened in widened_kinds:
        positive = _literal_polarity(inactive, widened)
        if positive is None:
            continue
        for net in sources:
            if net in target.inputs or net == target.name:
                continue
            variants.append(Variant(widened, (Literal(net, positive),), "reroute1"))
        # Pair variants need a cell two inputs wider.
        pair_kind = widened
        if library.try_find(pair_kind, target.n_inputs + 2) is None:
            continue
        emitted = 0
        for i in range(len(sources)):
            for j in range(i + 1, len(sources)):
                if emitted >= max_pair_variants:
                    break
                a, b = sources[i], sources[j]
                if a in target.inputs or b in target.inputs:
                    continue
                variants.append(
                    Variant(
                        pair_kind,
                        (Literal(a, positive), Literal(b, positive)),
                        "reroute2",
                    )
                )
                emitted += 1
    return variants


def _reroute_sources(trigger_gate: Gate, trigger_value: int) -> Tuple[List[str], int]:
    """Inputs of the trigger gate usable as reroute taps.

    Returns ``(source nets, inactive_value)`` where ``inactive_value`` is
    the value every source is guaranteed *not* to hold when the ODC is not
    active... more precisely the value each tapped literal presents in the
    must-preserve case (see module docstring).  Empty list when the trigger
    gate cannot guarantee the ODC from its inputs.
    """
    kind = trigger_gate.kind
    if kind == "INV":
        # X == c  iff  w == 1 - c; in the must-preserve case w == c.
        return list(trigger_gate.inputs), trigger_value
    if kind == "BUF":
        return list(trigger_gate.inputs), 1 - trigger_value
    control = functions.controlling_value(kind)
    controlled = functions.controlled_output(kind)
    if control is None or controlled != trigger_value:
        return [], 0
    # Distinct source nets only; a repeated net would alias literals.
    seen = []
    for net in trigger_gate.inputs:
        if net not in seen:
            seen.append(net)
    return seen, 1 - control


def slot_variants(
    circuit: Circuit,
    target: Gate,
    trigger: str,
    trigger_value: int,
    library: Optional[CellLibrary] = None,
    allow_xor_targets: bool = False,
    enable_reroute: bool = True,
    inverters: Optional[Dict[str, str]] = None,
    banned_negative_sources: Optional[set] = None,
) -> List[Variant]:
    """All feasible variants for one target gate.

    Deduplicated by *realized* structure: because complemented literals
    reuse existing inverters, two different literal intents can produce
    the same physical edit (e.g. "add trigger X directly" versus "add the
    complement of X's inverter input"); only one survives, keeping every
    catalogued configuration structurally distinct (the paper's
    distinctness requirement).
    """
    library = library or circuit.library
    if inverters is None:
        inverters = inverter_index(circuit)
    variants = direct_variants(
        target, trigger, trigger_value, library, allow_xor_targets
    )
    if enable_reroute:
        variants.extend(
            reroute_variants(
                circuit, target, trigger, trigger_value, library, allow_xor_targets
            )
        )
    # Level discipline: every added edge must run strictly forward in the
    # total order (original level, net name).  Original edges strictly
    # increase the level, hence the order; so any combination of such
    # modifications is acyclic by construction — without this, two taps
    # can jointly close a combinational loop (mod A makes its literal
    # source reachable from mod B's primary gate and vice versa) even
    # though each modification is individually sound.  Fresh inverters
    # sit just above their source in the same order.
    levels = circuit.levels()
    target_key = (levels.get(target.name, 0), target.name)

    def forward(variant: Variant) -> bool:
        for literal in variant.literals:
            key = realized_literal_key(circuit, literal, inverters)
            source = literal.net if key[0] == "inv" else key[1]
            if (levels.get(source, 0), source) >= target_key:
                return False
        return True

    unique: List[Variant] = []
    seen = set()
    for variant in variants:
        if not forward(variant):
            continue
        if banned_negative_sources and any(
            not l.positive and l.net in banned_negative_sources
            for l in variant.literals
        ):
            # An inverter of this source is itself a slot target; a fresh
            # or reused inverter here would alias with its configurations.
            continue
        key = realized_signature(circuit, variant, inverters)
        if key not in seen:
            seen.add(key)
            unique.append(variant)
    return unique
