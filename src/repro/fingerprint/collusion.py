"""Collusion attack simulation and colluder tracing (paper §III.E).

An attacker holding several fingerprinted copies can diff their layouts
and see exactly the slots where the copies differ; slots where all copies
agree are invisible to the attack (this is the standard *marking
assumption*).  The attacker forges a pirate copy by choosing, per visible
slot, one of the observed configurations (or stripping the modification
when some copy shows the unmodified form).

Tracing scores every registered buyer against the pirate's extracted
assignment; as the paper notes, unless the colluders scrub *all* their
fingerprint information, the colluding buyers remain identifiable — their
scores dominate the innocent population's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .signature import BuyerRegistry


@dataclass(frozen=True)
class CollusionOutcome:
    """Forged assignment plus bookkeeping about what the attack saw."""

    pirate_assignment: Dict[str, int]
    visible_slots: Tuple[str, ...]
    strategy: str


def collude(
    assignments: Sequence[Dict[str, int]],
    strategy: str = "majority",
    seed: int = 0,
) -> CollusionOutcome:
    """Forge a pirate assignment from the colluders' assignments.

    Strategies:
      * ``"majority"`` — per visible slot take the most common config.
      * ``"random"``   — per visible slot pick a random observed config.
      * ``"strip"``    — per visible slot prefer the unmodified form when
        any colluder exposes it, else majority (strongest removal attack
        under the marking assumption).
    """
    if not assignments:
        raise ValueError("need at least one colluder")
    if strategy not in ("majority", "random", "strip"):
        raise ValueError(f"unknown strategy {strategy!r}")
    rng = random.Random(seed)
    slots = sorted(assignments[0])
    pirate: Dict[str, int] = {}
    visible: List[str] = []
    for slot in slots:
        observed = [a.get(slot, 0) for a in assignments]
        distinct = sorted(set(observed))
        if len(distinct) == 1:
            pirate[slot] = distinct[0]
            continue
        visible.append(slot)
        if strategy == "random":
            pirate[slot] = rng.choice(distinct)
        elif strategy == "strip" and 0 in distinct:
            pirate[slot] = 0
        else:
            counts = {value: observed.count(value) for value in distinct}
            best = max(counts.values())
            pirate[slot] = min(v for v, c in counts.items() if c == best)
    return CollusionOutcome(
        pirate_assignment=pirate,
        visible_slots=tuple(visible),
        strategy=strategy,
    )


@dataclass(frozen=True)
class TraceReport:
    """Ranked tracing result."""

    scores: Tuple[Tuple[str, float], ...]
    accused: Tuple[str, ...]
    threshold: float


def trace(
    registry: BuyerRegistry,
    pirate_assignment: Dict[str, int],
    threshold: Optional[float] = None,
    min_gap: float = 0.08,
) -> TraceReport:
    """Score all buyers against the pirate and accuse high scorers.

    Without an explicit ``threshold`` the accusation cut is placed at the
    largest drop between consecutive sorted scores above the population
    median — colluders cluster high, innocents cluster around the chance
    level, and the gap between the clusters is the robust separator.  If
    no above-median drop reaches ``min_gap`` (a flat distribution: the
    pirate resembles nobody in particular), nobody is accused, protecting
    innocents.
    """
    scores = registry.score(pirate_assignment)
    if not scores:
        return TraceReport(scores=(), accused=(), threshold=0.0)
    values = sorted((s for _, s in scores), reverse=True)
    median = values[len(values) // 2]
    if threshold is not None:
        cut = threshold
        accused = tuple(
            buyer for buyer, score in scores if score >= cut and score > median
        )
        return TraceReport(scores=tuple(scores), accused=accused, threshold=cut)

    # Largest-gap detection over the above-median region.
    best_gap = 0.0
    cut = float("inf")
    for index in range(len(values) - 1):
        if values[index] <= median:
            break
        gap = values[index] - values[index + 1]
        if gap > best_gap:
            best_gap = gap
            cut = (values[index] + values[index + 1]) / 2.0
    if best_gap < min_gap:
        return TraceReport(scores=tuple(scores), accused=(), threshold=float("inf"))
    accused = tuple(buyer for buyer, score in scores if score > cut)
    return TraceReport(scores=tuple(scores), accused=accused, threshold=cut)


def colluders_traced(
    report: TraceReport, colluders: Sequence[str]
) -> Tuple[bool, Tuple[str, ...]]:
    """Check tracing success: (all accused are guilty, missed colluders)."""
    guilty = set(colluders)
    false_accusations = [b for b in report.accused if b not in guilty]
    missed = tuple(sorted(guilty - set(report.accused)))
    return (not false_accusations, missed)
