"""Satisfiability Don't Care (SDC) fingerprinting — the companion method.

The paper builds on the authors' SDC-based technique (reference [9],
Dunbar & Qu, ASP-DAC 2015): an input pattern that can *never occur* at a
gate's inputs is a satisfiability don't care, and the gate may be replaced
by any other cell that agrees with it on all patterns that do occur —
another functionality-preserving, hereditary, per-copy choice.

Implementation:

* **Care sets.** Bit-parallel simulation collects, per gate, the set of
  input patterns actually observed — exhaustively (exact care set) when
  the circuit has few primary inputs, or from random vectors otherwise.
* **Candidates.** A gate with an incomplete care set may be swapped for
  any same-arity library kind whose truth table matches on every observed
  pattern.
* **Verification.** Random care sets under-approximate reachability, so
  every candidate is verified before being admitted: the modified circuit
  is checked against the original (exhaustive simulation when exact,
  SAT-based CEC otherwise).  Unsound candidates are rejected, making the
  catalogue safe regardless of how the care set was obtained.

Unlike ODC modifications — which really do change internal signal values
whenever the trigger activates the ODC — an SDC swap leaves *every net's
value unchanged on every reachable input vector*.  SDC modifications
therefore compose trivially, and they also compose with ODC embeddings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cells import functions
from ..cells.library import CellLibrary
from ..netlist.circuit import Circuit, Gate, NetlistError
from ..sat.cec import sat_equivalent
from ..sim.equivalence import exhaustive_equivalent
from ..sim.simulator import Simulator
from ..sim.vectors import MAX_EXHAUSTIVE_INPUTS, exhaustive_stimulus, exhaustive_vector_count, random_stimulus

#: Gate kinds considered for SDC swaps (multi-input, library-backed).
_SWAPPABLE = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR")


@dataclass(frozen=True)
class SdcSlot:
    """One gate that can be swapped among several equivalent kinds.

    ``alternatives`` excludes the original kind; configuration 0 keeps the
    original, configuration ``i >= 1`` swaps to ``alternatives[i - 1]``.
    ``care_patterns`` is the number of observed input patterns out of
    ``2**arity``.
    """

    target: str
    original_kind: str
    arity: int
    care_patterns: int
    alternatives: Tuple[str, ...]

    @property
    def n_configs(self) -> int:
        return len(self.alternatives) + 1


@dataclass
class SdcCatalog:
    """All verified SDC slots of one circuit."""

    circuit_name: str
    slots: List[SdcSlot] = field(default_factory=list)
    exact_care_sets: bool = True

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    def slot_by_target(self, target: str) -> SdcSlot:
        for slot in self.slots:
            if slot.target == target:
                return slot
        raise KeyError(f"no SDC slot targets {target!r}")

    @property
    def combinations(self) -> int:
        total = 1
        for slot in self.slots:
            total *= slot.n_configs
        return total

    @property
    def bits(self) -> float:
        return math.log2(self.combinations) if self.combinations > 1 else 0.0

    def __iter__(self):
        return iter(self.slots)

    def __len__(self) -> int:
        return len(self.slots)


def observed_patterns(
    circuit: Circuit,
    n_random_vectors: int = 8192,
    seed: int = 0,
    exhaustive_limit: int = MAX_EXHAUSTIVE_INPUTS,
) -> Tuple[Dict[str, int], bool]:
    """Per-gate mask of observed input patterns.

    Returns ``(masks, exact)`` where ``masks[gate]`` has bit ``p`` set when
    input pattern ``p`` (gate input ``i`` contributing bit ``i``) occurred,
    and ``exact`` records whether the stimulus was exhaustive.
    """
    n_inputs = len(circuit.inputs)
    exact = n_inputs <= exhaustive_limit
    if exact:
        stimulus = exhaustive_stimulus(circuit.inputs)
        n_vectors = exhaustive_vector_count(n_inputs)
    else:
        stimulus = random_stimulus(circuit.inputs, n_random_vectors, seed=seed)
        n_vectors = n_random_vectors
    values = Simulator(circuit).run(stimulus)

    masks: Dict[str, int] = {}
    for gate in circuit.gates:
        if not gate.inputs:
            continue
        words = [values[n] for n in gate.inputs]
        bits = [
            np.unpackbits(w.view(np.uint8), bitorder="little")[:n_vectors]
            for w in words
        ]
        patterns = np.zeros(n_vectors, dtype=np.int64)
        for i, b in enumerate(bits):
            patterns |= b.astype(np.int64) << i
        mask = 0
        for p in np.unique(patterns):
            mask |= 1 << int(p)
        masks[gate.name] = mask
    return masks, exact


def _kinds_matching_on(kind: str, arity: int, care_mask: int, library: CellLibrary) -> List[str]:
    """Same-arity kinds agreeing with ``kind`` on every care pattern."""
    base_table = functions.truth_table(kind, arity)
    matches = []
    for candidate in _SWAPPABLE:
        if candidate == kind:
            continue
        if library.try_find(candidate, arity) is None:
            continue
        table = functions.truth_table(candidate, arity)
        if (table ^ base_table) & care_mask == 0:
            matches.append(candidate)
    return matches


def _verified(base: Circuit, target: str, new_kind: str, exact: bool) -> bool:
    trial = base.clone("sdc_trial")
    gate = trial.gate(target)
    trial.replace_gate(target, new_kind, list(gate.inputs))
    if exact:
        return exhaustive_equivalent(base, trial).equivalent
    return sat_equivalent(base, trial).equivalent


def find_sdc_slots(
    circuit: Circuit,
    n_random_vectors: int = 8192,
    seed: int = 0,
    max_slots: Optional[int] = None,
    verify: bool = True,
) -> SdcCatalog:
    """Discover verified SDC fingerprint slots in ``circuit``.

    With exact care sets (exhaustively simulable circuits) candidates are
    sound by construction, but we still verify each admitted swap; with
    sampled care sets, verification (SAT CEC) is what makes the catalogue
    sound.  ``verify=False`` skips the check and is only safe when the
    care set was exact.
    """
    masks, exact = observed_patterns(
        circuit, n_random_vectors=n_random_vectors, seed=seed
    )
    catalog = SdcCatalog(circuit.name, exact_care_sets=exact)
    for gate in circuit.topological_order():
        if max_slots is not None and len(catalog.slots) >= max_slots:
            break
        if gate.kind not in _SWAPPABLE:
            continue
        if len(set(gate.inputs)) != gate.n_inputs:
            continue
        mask = masks.get(gate.name, 0)
        full = (1 << (1 << gate.n_inputs)) - 1
        if mask == full:
            continue  # no don't cares at this gate
        candidates = _kinds_matching_on(
            gate.kind, gate.n_inputs, mask, circuit.library
        )
        if verify:
            candidates = [
                kind for kind in candidates
                if _verified(circuit, gate.name, kind, exact)
            ]
        if not candidates:
            continue
        catalog.slots.append(
            SdcSlot(
                target=gate.name,
                original_kind=gate.kind,
                arity=gate.n_inputs,
                care_patterns=bin(mask).count("1"),
                alternatives=tuple(candidates),
            )
        )
    return catalog


class SdcFingerprint:
    """An SDC fingerprint copy under construction or analysis."""

    def __init__(self, base: Circuit, catalog: SdcCatalog, name: Optional[str] = None):
        self.base = base
        self.catalog = catalog
        self.circuit = base.clone(name or f"{base.name}_sdc")
        self._applied: Dict[str, int] = {}

    @property
    def applied(self) -> Dict[str, int]:
        return dict(self._applied)

    def apply(self, target: str, configuration: int) -> None:
        """Set one slot (0 restores the original kind)."""
        slot = self.catalog.slot_by_target(target)
        if not 0 <= configuration <= len(slot.alternatives):
            raise ValueError(
                f"slot {target}: configuration {configuration} out of range"
            )
        original = self.base.gate(target)
        if configuration == 0:
            self.circuit.replace_gate(
                target, original.kind, original.inputs, cell=original.cell
            )
            self._applied.pop(target, None)
            return
        kind = slot.alternatives[configuration - 1]
        self.circuit.replace_gate(target, kind, list(original.inputs))
        self._applied[target] = configuration

    def apply_assignment(self, assignment: Dict[str, int]) -> None:
        for target, configuration in assignment.items():
            self.apply(target, configuration)

    def assignment(self) -> Dict[str, int]:
        return {
            slot.target: self._applied.get(slot.target, 0)
            for slot in self.catalog
        }


def sdc_embed(
    base: Circuit,
    catalog: SdcCatalog,
    assignment: Dict[str, int],
    name: Optional[str] = None,
) -> SdcFingerprint:
    """Produce an SDC fingerprint copy realizing ``assignment``."""
    copy = SdcFingerprint(base, catalog, name=name)
    copy.apply_assignment(assignment)
    copy.circuit.validate()
    return copy


def sdc_extract(suspect: Circuit, base: Circuit, catalog: SdcCatalog) -> Dict[str, int]:
    """Read an SDC fingerprint back from a suspect netlist.

    Unknown structures read as configuration -1 (tampered).
    """
    assignment: Dict[str, int] = {}
    for slot in catalog:
        try:
            gate = suspect.gate(slot.target)
        except NetlistError:
            assignment[slot.target] = -1
            continue
        original = base.gate(slot.target)
        if gate.inputs != original.inputs:
            assignment[slot.target] = -1
        elif gate.kind == slot.original_kind:
            assignment[slot.target] = 0
        elif gate.kind in slot.alternatives:
            assignment[slot.target] = slot.alternatives.index(gate.kind) + 1
        else:
            assignment[slot.target] = -1
    return assignment


class SdcCodec:
    """Mixed-radix codec over an SDC catalog (mirrors FingerprintCodec)."""

    def __init__(self, catalog: SdcCatalog) -> None:
        self.catalog = catalog
        self._radices = [slot.n_configs for slot in catalog]
        self.combinations = 1
        for radix in self._radices:
            self.combinations *= radix

    @property
    def bits(self) -> float:
        return math.log2(self.combinations) if self.combinations > 1 else 0.0

    def encode(self, value: int) -> Dict[str, int]:
        if not 0 <= value < self.combinations:
            raise ValueError(f"value {value} outside [0, {self.combinations})")
        assignment = {}
        for slot, radix in zip(self.catalog, self._radices):
            value, digit = divmod(value, radix)
            assignment[slot.target] = digit
        return assignment

    def decode(self, assignment: Dict[str, int]) -> int:
        value = 0
        for slot, radix in reversed(list(zip(self.catalog, self._radices))):
            digit = assignment.get(slot.target, 0)
            if not 0 <= digit < radix:
                raise ValueError(f"slot {slot.target}: bad digit {digit}")
            value = value * radix + digit
        return value
