"""Post-silicon fuse programming of fingerprints (paper §VI).

The paper's conclusion proposes making the method practical by fabricating
*identical* ICs that carry every candidate fingerprint connection, then
solidifying each die's fingerprint after fabrication — e.g. "using fuses
as the connections for the added lines so we can decide which ones are
active".

:class:`FuseProgrammableDesign` models exactly that object: a master
design whose slots are all manufactured with their candidate connections
present, plus a write-once fuse map.  Programming a slot burns its fuse to
one variant (or to "open", permanently disconnecting the spare input);
burnt fuses cannot be re-programmed — the defining property of the
post-silicon flow, enforced here.  ``materialize()`` returns the concrete
netlist the programmed die realizes, which is bit-identical to what
:func:`repro.fingerprint.embed.embed` produces for the same assignment, so
all analyses (equivalence, extraction, tracing) apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netlist.circuit import Circuit
from .capacity import FingerprintCodec
from .embed import FingerprintedCircuit
from .locations import LocationCatalog
from ..errors import ReproError


class FuseError(ReproError, RuntimeError):
    """Illegal fuse operation (re-programming, unknown slot/variant)."""


#: Fuse state sentinel: not yet programmed (still flexible).
UNPROGRAMMED = None


@dataclass
class FuseProgrammableDesign:
    """One die of the pre-fingerprinted master design.

    Every slot starts UNPROGRAMMED (the die is identical to every other
    die off the line).  :meth:`program` burns one slot's fuse; a value of
    0 burns the spare connection open (the unmodified configuration), a
    value of ``i >= 1`` selects variant ``i``.  Fuses are write-once.
    """

    base: Circuit
    catalog: LocationCatalog
    die_id: str = "die0"
    _fuse_state: Dict[str, Optional[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for slot in self.catalog.slots():
            self._fuse_state.setdefault(slot.target, UNPROGRAMMED)

    # ------------------------------------------------------------------ #
    # fuse operations
    # ------------------------------------------------------------------ #

    def state(self, target: str) -> Optional[int]:
        """Fuse state of one slot (None while unprogrammed)."""
        try:
            return self._fuse_state[target]
        except KeyError:
            raise FuseError(f"no fuse for slot {target!r}")

    @property
    def programmed(self) -> bool:
        """True when every fuse has been burnt."""
        return all(v is not UNPROGRAMMED for v in self._fuse_state.values())

    @property
    def flexible_slots(self) -> List[str]:
        """Slots whose fuses are still intact."""
        return [t for t, v in self._fuse_state.items() if v is UNPROGRAMMED]

    def program(self, target: str, configuration: int) -> None:
        """Burn one slot's fuse to ``configuration`` (write-once)."""
        current = self.state(target)
        if current is not UNPROGRAMMED:
            raise FuseError(
                f"{self.die_id}: fuse of slot {target!r} already burnt "
                f"to {current}"
            )
        slot = self.catalog.slot_by_target(target)
        if not 0 <= configuration <= len(slot.variants):
            raise FuseError(
                f"{self.die_id}: slot {target!r} has no configuration "
                f"{configuration}"
            )
        self._fuse_state[target] = configuration

    def program_assignment(self, assignment: Dict[str, int]) -> None:
        """Burn every listed fuse; slots absent from the map burn open."""
        for slot in self.catalog.slots():
            self.program(slot.target, assignment.get(slot.target, 0))

    def program_value(self, value: int) -> None:
        """Burn the whole die to one point of the fingerprint space."""
        codec = FingerprintCodec(self.catalog)
        self.program_assignment(codec.encode(value))

    # ------------------------------------------------------------------ #
    # realization
    # ------------------------------------------------------------------ #

    def materialize(self, name: Optional[str] = None) -> Circuit:
        """The concrete netlist this die realizes.

        Unprogrammed fuses are treated as open (configuration 0): an
        unburnt spare connection contributes no logic, so a partially
        programmed die behaves like the base design at the flexible slots.
        """
        copy = FingerprintedCircuit(
            self.base, self.catalog, name=name or f"{self.base.name}_{self.die_id}"
        )
        for target, configuration in self._fuse_state.items():
            if configuration:
                copy.apply(target, configuration)
        copy.circuit.validate()
        return copy.circuit

    def assignment(self) -> Dict[str, int]:
        """Current configuration map (unprogrammed slots read 0)."""
        return {t: (v or 0) for t, v in self._fuse_state.items()}

    def __repr__(self) -> str:
        burnt = sum(1 for v in self._fuse_state.values() if v is not UNPROGRAMMED)
        return (
            f"FuseProgrammableDesign({self.die_id!r}, "
            f"burnt={burnt}/{len(self._fuse_state)})"
        )


class FuseProductionLine:
    """Mints dies of one master design and programs them per buyer.

    The pre-silicon step (master design + catalog) happens once; each die
    off the line is identical until programmed — the cost structure the
    paper's two-step process is after.
    """

    def __init__(self, base: Circuit, catalog: LocationCatalog) -> None:
        self.base = base
        self.catalog = catalog
        self.codec = FingerprintCodec(self.catalog)
        self._minted = 0

    def mint(self) -> FuseProgrammableDesign:
        """A fresh, unprogrammed die."""
        die = FuseProgrammableDesign(
            self.base, self.catalog, die_id=f"die{self._minted}"
        )
        self._minted += 1
        return die

    def produce(self, value: int) -> FuseProgrammableDesign:
        """Mint and fully program one die to fingerprint ``value``."""
        die = self.mint()
        die.program_value(value)
        return die
