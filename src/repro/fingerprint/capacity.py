"""Fingerprint capacity accounting and the mixed-radix codec.

The configuration space of a catalog is the product over slots of
``(variants + 1)`` choices; the paper reports ``log2`` of that product
(Table II, column "Log2(Possible Fingerprint Combinations)") because the
raw counts overflow ordinary number formats.  The codec maps integers (or
bit strings) bijectively onto configuration assignments so every buyer id
gets a distinct fingerprint copy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .locations import LocationCatalog
from .modifications import Slot


@dataclass(frozen=True)
class CapacityReport:
    """Size of a catalog's fingerprint space."""

    n_locations: int
    n_slots: int
    n_variants: int
    combinations: int
    bits: float

    @property
    def min_combinations(self) -> int:
        """The paper's 2**n lower bound (n = number of locations)."""
        return 1 << self.n_locations


def capacity(catalog: LocationCatalog) -> CapacityReport:
    """Compute the exact configuration count and its log2."""
    combinations = 1
    n_slots = 0
    n_variants = 0
    for slot in catalog.slots():
        combinations *= slot.n_configs
        n_slots += 1
        n_variants += len(slot.variants)
    bits = math.log2(combinations) if combinations > 1 else 0.0
    return CapacityReport(
        n_locations=catalog.n_locations,
        n_slots=n_slots,
        n_variants=n_variants,
        combinations=combinations,
        bits=bits,
    )


class FingerprintCodec:
    """Bijective mixed-radix encoding of integers as slot assignments.

    Slot order follows the catalog's deterministic order; slot ``i`` is a
    digit of radix ``n_configs(i)``.  ``encode`` maps an integer in
    ``[0, combinations)`` to an assignment, ``decode`` inverts it.
    """

    def __init__(self, catalog: LocationCatalog) -> None:
        self.catalog = catalog
        self._slots: List[Slot] = catalog.slots()
        self._radices = [slot.n_configs for slot in self._slots]
        self.combinations = 1
        for radix in self._radices:
            self.combinations *= radix

    @property
    def n_digits(self) -> int:
        return len(self._slots)

    @property
    def bits(self) -> float:
        return math.log2(self.combinations) if self.combinations > 1 else 0.0

    def encode(self, value: int) -> Dict[str, int]:
        """Integer -> slot assignment (target -> configuration index)."""
        if not 0 <= value < self.combinations:
            raise ValueError(
                f"value {value} outside fingerprint space [0, {self.combinations})"
            )
        assignment: Dict[str, int] = {}
        for slot, radix in zip(self._slots, self._radices):
            value, digit = divmod(value, radix)
            assignment[slot.target] = digit
        return assignment

    def decode(self, assignment: Dict[str, int]) -> int:
        """Slot assignment -> integer."""
        value = 0
        for slot, radix in reversed(list(zip(self._slots, self._radices))):
            digit = assignment.get(slot.target, 0)
            if not 0 <= digit < radix:
                raise ValueError(
                    f"slot {slot.target}: configuration {digit} out of range"
                )
            value = value * radix + digit
        return value

    def encode_bits(self, bits: Sequence[int]) -> Dict[str, int]:
        """Encode a little-endian bit sequence (must fit the space)."""
        value = 0
        for i, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError("bits must be 0/1")
            value |= bit << i
        return self.encode(value)

    def decode_bits(self, assignment: Dict[str, int], n_bits: int) -> List[int]:
        """Decode to a little-endian bit list of length ``n_bits``."""
        value = self.decode(assignment)
        return [(value >> i) & 1 for i in range(n_bits)]

    def random_assignment(self, rng) -> Dict[str, int]:
        """Uniform random point of the fingerprint space."""
        return self.encode(rng.randrange(self.combinations))
