"""Applying fingerprint configurations to a circuit (and removing them).

A :class:`FingerprintedCircuit` wraps a mutable clone of the golden design
together with the location catalog.  Applying a slot variant widens the
target gate with the variant's literal(s); complemented literals share
inverters (reference-counted so removal is exact).  The reactive overhead
heuristic relies on :meth:`FingerprintedCircuit.remove` reverting a slot
bit-exactly to the original structure.

The module also provides the paper's default *full embedding* policy: one
modification per location, choosing the deepest slot target (the paper
picks the highest-depth gate so the rerouted signal is needed as late as
possible).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import telemetry
from ..netlist.circuit import Circuit, Gate
from .locations import LocationCatalog
from .modifications import Slot
from ..errors import ReproError


class EmbeddingError(ReproError, ValueError):
    """Invalid slot/variant selection or inconsistent embedding state."""


class FingerprintedCircuit:
    """A fingerprint copy under construction or analysis."""

    def __init__(
        self,
        base: Circuit,
        catalog: LocationCatalog,
        name: Optional[str] = None,
    ) -> None:
        self.base = base
        self.catalog = catalog
        self.circuit = base.clone(name or f"{base.name}_fp")
        self._slot_of: Dict[str, Slot] = {s.target: s for s in catalog.slots()}
        self._applied: Dict[str, int] = {}
        self._original: Dict[str, Gate] = {}
        self._inverter_of: Dict[str, str] = {}
        self._inverter_refs: Dict[str, int] = {}
        # Inverters already present in the golden design, reused for
        # complemented literals instead of minting structural twins
        # (cheaper, and keeps the netlist twin-free for structural
        # matching).  Slot targets are excluded — a reused inverter must
        # never itself be widened — matching the catalog-build decisions
        # (see find_locations), and acyclicity is guaranteed by the
        # catalog's forward-level discipline.
        from .modifications import inverter_index

        self._base_inverter_of: Dict[str, str] = inverter_index(
            base, excluded=frozenset(self._slot_of)
        )

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    @property
    def applied(self) -> Dict[str, int]:
        """Active modifications: target gate -> 1-based variant index."""
        return dict(self._applied)

    def assignment(self) -> Dict[str, int]:
        """Configuration of *every* slot (0 = unmodified)."""
        return {
            slot.target: self._applied.get(slot.target, 0)
            for slot in self.catalog.slots()
        }

    def slot(self, target: str) -> Slot:
        try:
            return self._slot_of[target]
        except KeyError:
            raise EmbeddingError(f"gate {target!r} is not a slot target")

    # ------------------------------------------------------------------ #
    # inverter sharing
    # ------------------------------------------------------------------ #

    def _inverted_net(self, source: str) -> str:
        existing = self._base_inverter_of.get(source)
        if existing is not None:
            return existing  # golden inverter: shared, never removed
        net = self._inverter_of.get(source)
        if net is not None:
            self._inverter_refs[net] += 1
            return net
        net = f"fp_inv_{source}"
        suffix = 0
        while self.circuit.has_net(net):
            suffix += 1
            net = f"fp_inv_{source}_{suffix}"
        self.circuit.add_gate(net, "INV", [source])
        self._inverter_of[source] = net
        self._inverter_refs[net] = 1
        return net

    def _release_inverted(self, net: str) -> None:
        self._inverter_refs[net] -= 1
        if self._inverter_refs[net] == 0:
            gate = self.circuit.gate(net)
            self.circuit.remove_gate(net)
            del self._inverter_refs[net]
            del self._inverter_of[gate.inputs[0]]

    # ------------------------------------------------------------------ #
    # apply / remove
    # ------------------------------------------------------------------ #

    def apply(self, target: str, variant_index: int) -> None:
        """Set slot ``target`` to 1-based ``variant_index`` (0 removes)."""
        slot = self.slot(target)
        if variant_index == 0:
            if target in self._applied:
                self.remove(target)
            return
        if not 1 <= variant_index <= len(slot.variants):
            raise EmbeddingError(
                f"slot {target}: variant {variant_index} out of range "
                f"1..{len(slot.variants)}"
            )
        if target in self._applied:
            self.remove(target)
        variant = slot.variants[variant_index - 1]
        original = self.circuit.gate(target)
        added: List[str] = []
        for literal in variant.literals:
            if literal.positive:
                added.append(literal.net)
            else:
                added.append(self._inverted_net(literal.net))
        new_inputs = list(original.inputs) + added
        self.circuit.replace_gate(target, variant.kind, new_inputs)
        self._original[target] = original
        self._applied[target] = variant_index

    def remove(self, target: str) -> None:
        """Revert slot ``target`` to its original gate."""
        if target not in self._applied:
            raise EmbeddingError(f"slot {target!r} has no active modification")
        variant = self.slot(target).variants[self._applied[target] - 1]
        current = self.circuit.gate(target)
        original = self._original.pop(target)
        self.circuit.replace_gate(
            target, original.kind, original.inputs, cell=original.cell
        )
        # Release fingerprint-created inverters that backed complemented
        # literals (reused golden inverters are left alone).
        extra = list(current.inputs[len(original.inputs):])
        for literal, net in zip(variant.literals, extra):
            if not literal.positive and net in self._inverter_refs:
                self._release_inverted(net)
        del self._applied[target]

    def apply_assignment(self, assignment: Dict[str, int]) -> None:
        """Apply a full target->configuration map (0 entries are cleared)."""
        for target, variant_index in assignment.items():
            self.apply(target, variant_index)

    def clear(self) -> None:
        """Remove every active modification."""
        for target in list(self._applied):
            self.remove(target)

    @property
    def n_active(self) -> int:
        """Number of slots currently modified."""
        return len(self._applied)

    def __repr__(self) -> str:
        return (
            f"FingerprintedCircuit({self.base.name!r}, "
            f"active={self.n_active}/{len(self._slot_of)})"
        )


def representative_slots(
    base: Circuit, catalog: LocationCatalog
) -> List[Slot]:
    """One slot per location: the deepest target (paper Fig. 6, line 13)."""
    levels = base.levels()
    chosen = []
    for location in catalog:
        slot = max(location.slots, key=lambda s: (levels.get(s.target, 0), s.target))
        chosen.append(slot)
    return chosen


def full_assignment(
    base: Circuit,
    catalog: LocationCatalog,
    variant_index: int = 1,
) -> Dict[str, int]:
    """The paper's maximal embedding: every location modified once.

    Uses the first (direct, when available) variant of each location's
    representative slot; all other slots stay at configuration 0.
    """
    assignment = {slot.target: 0 for slot in catalog.slots()}
    for slot in representative_slots(base, catalog):
        index = min(variant_index, len(slot.variants))
        assignment[slot.target] = index
    return assignment


def embed(
    base: Circuit,
    catalog: LocationCatalog,
    assignment: Dict[str, int],
    name: Optional[str] = None,
) -> FingerprintedCircuit:
    """Produce a fingerprint copy realizing ``assignment``."""
    with telemetry.span("fingerprint.embed", design=base.name) as embed_span:
        copy = FingerprintedCircuit(base, catalog, name=name)
        copy.apply_assignment(assignment)
        copy.circuit.validate()
        embed_span.set(modifications=copy.n_active)
    telemetry.count("fingerprint.embeds")
    telemetry.count("fingerprint.modifications", copy.n_active)
    return copy
