"""Buyer signatures: mapping IP buyers onto fingerprint configurations.

Provides two encoders on top of the mixed-radix codec:

* :class:`BuyerRegistry` — assigns each buyer a distinct random point of
  the fingerprint space (distinctness requirement of §I) and remembers the
  mapping for tracing.
* :class:`RedundantCodec` — the paper's §V suggestion to spend excess
  capacity on redundancy: slots are split round-robin into ``copies``
  groups, every group encodes the same payload, and decoding majority-votes
  per payload bit.  A collusion attack must scrub a majority of the groups
  at every bit position to destroy the payload.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .capacity import FingerprintCodec
from .locations import LocationCatalog
from .modifications import Slot
from ..errors import ReproError


@dataclass(frozen=True)
class BuyerRecord:
    """One registered buyer and their fingerprint point."""

    buyer: str
    value: int
    assignment: Dict[str, int]


class RegistryFullError(ReproError, RuntimeError):
    """The fingerprint space has been exhausted."""


class BuyerRegistry:
    """Assigns and remembers distinct fingerprints per buyer."""

    def __init__(self, catalog: LocationCatalog, seed: int = 0) -> None:
        self.codec = FingerprintCodec(catalog)
        self._rng = random.Random(seed)
        self._by_buyer: Dict[str, BuyerRecord] = {}
        self._used_values: set = set()

    def register(self, buyer: str) -> BuyerRecord:
        """Register ``buyer`` with a fresh random fingerprint."""
        if buyer in self._by_buyer:
            return self._by_buyer[buyer]
        if len(self._used_values) >= self.codec.combinations:
            raise RegistryFullError("fingerprint space exhausted")
        while True:
            value = self._rng.randrange(self.codec.combinations)
            if value not in self._used_values:
                break
        self._used_values.add(value)
        record = BuyerRecord(buyer, value, self.codec.encode(value))
        self._by_buyer[buyer] = record
        return record

    def record(self, buyer: str) -> BuyerRecord:
        return self._by_buyer[buyer]

    @property
    def buyers(self) -> List[str]:
        return list(self._by_buyer)

    def records(self) -> List[BuyerRecord]:
        return list(self._by_buyer.values())

    def identify(self, assignment: Dict[str, int]) -> Optional[BuyerRecord]:
        """Exact-match lookup of an extracted assignment."""
        for record in self._by_buyer.values():
            if record.assignment == assignment:
                return record
        return None

    def score(self, assignment: Dict[str, int]) -> List[Tuple[str, float]]:
        """Agreement fraction of each buyer with ``assignment``, sorted.

        The score counts matching slots over all slots; exact copies score
        1.0 and unrelated buyers hover around the chance level.
        """
        results = []
        slots = self.codec.catalog.slots()
        if not slots:
            return [(record.buyer, 0.0) for record in self._by_buyer.values()]
        for record in self._by_buyer.values():
            matches = sum(
                1
                for slot in slots
                if assignment.get(slot.target, 0) == record.assignment[slot.target]
            )
            results.append((record.buyer, matches / len(slots)))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results


class RedundantCodec:
    """Repetition-coded payload encoding over the slot space.

    ``payload_bits`` is limited by the smallest group's capacity.  The
    decoder majority-votes each payload bit across groups, so up to
    ``(copies - 1) // 2`` corrupted groups per bit are tolerated.
    """

    def __init__(self, catalog: LocationCatalog, copies: int = 3) -> None:
        if copies < 1:
            raise ValueError("copies must be >= 1")
        self.catalog = catalog
        self.copies = copies
        slots = catalog.slots()
        self._groups: List[List[Slot]] = [[] for _ in range(copies)]
        for index, slot in enumerate(slots):
            self._groups[index % copies].append(slot)
        self._group_combos = []
        for group in self._groups:
            combos = 1
            for slot in group:
                combos *= slot.n_configs
            self._group_combos.append(combos)
        smallest = min(self._group_combos) if self._group_combos else 1
        self.payload_bits = max(0, int(math.floor(math.log2(smallest))))

    def encode(self, payload: int) -> Dict[str, int]:
        """Encode ``payload`` identically into every slot group."""
        if self.payload_bits == 0:
            raise ValueError("catalog too small for redundant encoding")
        if not 0 <= payload < (1 << self.payload_bits):
            raise ValueError(
                f"payload {payload} exceeds {self.payload_bits} bits"
            )
        assignment: Dict[str, int] = {}
        for group in self._groups:
            value = payload
            for slot in group:
                value, digit = divmod(value, slot.n_configs)
                assignment[slot.target] = digit
        return assignment

    def decode(self, assignment: Dict[str, int]) -> int:
        """Majority-vote decode of the payload."""
        votes: List[int] = []
        for group in self._groups:
            value = 0
            for slot in reversed(group):
                digit = assignment.get(slot.target, 0)
                digit = min(digit, slot.n_configs - 1)
                value = value * slot.n_configs + digit
            votes.append(value & ((1 << self.payload_bits) - 1))
        payload = 0
        for bit in range(self.payload_bits):
            ones = sum((v >> bit) & 1 for v in votes)
            if 2 * ones > len(votes):
                payload |= 1 << bit
        return payload


def buyer_payload(buyer: str, payload_bits: int) -> int:
    """Deterministic payload for a buyer name (hash-truncated)."""
    digest = hashlib.sha256(buyer.encode()).digest()
    value = int.from_bytes(digest[:8], "little")
    if payload_bits >= 64:
        return value
    return value & ((1 << payload_bits) - 1)
