"""Catalog auditing: formally verify every fingerprint variant.

The modification catalogue is constructed from local algebraic rules that
are proven correct in general (see :mod:`repro.fingerprint.modifications`)
— but an IP owner shipping thousands of copies wants machine-checked
assurance on *their* design.  ``audit_catalog`` applies every variant of
every slot in isolation and verifies the result against the golden design
(exhaustive simulation when the input count allows, SAT-based CEC
otherwise), returning a per-variant report.  A clean audit means every
point of the fingerprint space is functionality-preserving, because
modifications compose (each slot edit is independent and the soundness
argument is per-slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..netlist.circuit import Circuit
from ..sat.cec import sat_equivalent
from ..sim.equivalence import exhaustive_equivalent
from .embed import FingerprintedCircuit
from .locations import LocationCatalog


@dataclass(frozen=True)
class VariantVerdict:
    """Verification outcome of one (slot, variant) pair."""

    target: str
    variant_index: int
    equivalent: bool
    method: str  # "exhaustive" | "sat"


@dataclass
class AuditReport:
    """Outcome of a whole-catalog audit."""

    circuit_name: str
    verdicts: List[VariantVerdict] = field(default_factory=list)

    @property
    def n_checked(self) -> int:
        return len(self.verdicts)

    @property
    def failures(self) -> Tuple[VariantVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.equivalent)

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.failures)} FAILURES"
        return (
            f"audit of {self.circuit_name}: {self.n_checked} variants "
            f"checked, {status}"
        )


def audit_catalog(
    base: Circuit,
    catalog: LocationCatalog,
    max_exhaustive_inputs: int = 14,
    max_variants: Optional[int] = None,
) -> AuditReport:
    """Verify every variant of every slot against the golden design.

    ``max_variants`` bounds the total number of checks (useful to smoke a
    huge catalog); ``None`` audits everything.
    """
    report = AuditReport(base.name)
    use_exhaustive = len(base.inputs) <= max_exhaustive_inputs
    fp = FingerprintedCircuit(base, catalog, name=f"{base.name}_audit")
    for slot in catalog.slots():
        for index in range(1, len(slot.variants) + 1):
            if max_variants is not None and report.n_checked >= max_variants:
                return report
            fp.apply(slot.target, index)
            if use_exhaustive:
                verdict = exhaustive_equivalent(base, fp.circuit).equivalent
                method = "exhaustive"
            else:
                verdict = sat_equivalent(base, fp.circuit).equivalent
                method = "sat"
            report.verdicts.append(
                VariantVerdict(slot.target, index, verdict, method)
            )
            fp.remove(slot.target)
    return report
