"""ODC-based circuit fingerprinting — the paper's core contribution."""

from .modifications import (
    Literal,
    Slot,
    Variant,
    direct_variants,
    reroute_variants,
    slot_variants,
)
from .locations import (
    FinderOptions,
    FingerprintLocation,
    LocationCatalog,
    find_locations,
)
from .embed import (
    EmbeddingError,
    FingerprintedCircuit,
    embed,
    full_assignment,
    representative_slots,
)
from .capacity import CapacityReport, FingerprintCodec, capacity
from .extract import ExtractionResult, extract, fingerprints_distinct
from .constraints import (
    ConstraintResult,
    proactive_delay_constrain,
    reactive_constrain,
    reactive_delay_constrain,
)
from .signature import (
    BuyerRecord,
    BuyerRegistry,
    RedundantCodec,
    RegistryFullError,
    buyer_payload,
)
from .collusion import (
    CollusionOutcome,
    TraceReport,
    collude,
    colluders_traced,
    trace,
)
from .fuses import (
    UNPROGRAMMED,
    FuseError,
    FuseProductionLine,
    FuseProgrammableDesign,
)
from .audit import AuditReport, VariantVerdict, audit_catalog
from .structural import extract_structural, match_nets, rename_to_golden
from .sdc import (
    SdcCatalog,
    SdcCodec,
    SdcFingerprint,
    SdcSlot,
    find_sdc_slots,
    observed_patterns,
    sdc_embed,
    sdc_extract,
)

__all__ = [
    "Literal",
    "Slot",
    "Variant",
    "direct_variants",
    "reroute_variants",
    "slot_variants",
    "FinderOptions",
    "FingerprintLocation",
    "LocationCatalog",
    "find_locations",
    "EmbeddingError",
    "FingerprintedCircuit",
    "embed",
    "full_assignment",
    "representative_slots",
    "CapacityReport",
    "FingerprintCodec",
    "capacity",
    "ExtractionResult",
    "extract",
    "fingerprints_distinct",
    "ConstraintResult",
    "proactive_delay_constrain",
    "reactive_constrain",
    "reactive_delay_constrain",
    "BuyerRecord",
    "BuyerRegistry",
    "RedundantCodec",
    "RegistryFullError",
    "buyer_payload",
    "CollusionOutcome",
    "TraceReport",
    "collude",
    "colluders_traced",
    "trace",
    "UNPROGRAMMED",
    "FuseError",
    "FuseProductionLine",
    "FuseProgrammableDesign",
    "AuditReport",
    "VariantVerdict",
    "audit_catalog",
    "extract_structural",
    "match_nets",
    "rename_to_golden",
    "SdcCatalog",
    "SdcCodec",
    "SdcFingerprint",
    "SdcSlot",
    "find_sdc_slots",
    "observed_patterns",
    "sdc_embed",
    "sdc_extract",
]
