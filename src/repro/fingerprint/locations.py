"""Fingerprint location discovery (paper Definition 1 and Fig. 6).

A fingerprint location is anchored at a *primary gate* P that creates ODCs
and takes one input Y from a fanout-free cone (FFC); any other input X of P
is an ODC trigger.  Per the paper's pseudo-code we pick Y as the deepest
eligible fanin and X as the earliest-arriving other input (minimizing the
rerouted signal's delay impact), then enumerate every modifiable gate of
the FFC as a :class:`~repro.fingerprint.modifications.Slot` with its
feasible variants.

The four criteria of Definition 1 map to code as follows:

1. P has an input that is not a primary input — implied by 2.
2. Some input Y of P is the output of an FFC — Y's driver exists, Y feeds
   only P, and Y is not a primary output.
3. The FFC contains a gate with non-zero ODC or a single-input gate and
   the library can widen it — a slot with at least one feasible variant.
4. P has non-zero ODC w.r.t. an input other than Y — P has a controlling
   value and arity >= 2, so any other input X qualifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..cells import functions
from ..ir import compile_circuit
from ..netlist.circuit import Circuit, Gate
from ..netlist.graph import fanout_free_cone
from ..odcwin import STRATEGIES, WindowedOdcEngine
from .modifications import Slot, slot_variants


@dataclass(frozen=True)
class FinderOptions:
    """Policy knobs for the location finder.

    ``trigger_choice`` and ``root_choice`` reproduce the paper's depth
    heuristics by default and expose alternatives for ablations.
    ``allow_xor_targets`` is an extension beyond the paper (XOR gates have
    an identity element and can absorb literals even though they create no
    ODCs); it is off by default to match the paper.  ``strategy`` selects
    the :class:`~repro.odcwin.WindowedOdcEngine` mode used to validate
    each candidate's ODC condition before admitting the location —
    ``"windowed"`` (local windows, constant propagation, SAT only as a
    last resort) or ``"global"`` (full-cone resimulation plus a
    full-circuit miter); both produce bit-identical verdicts.
    """

    allow_xor_targets: bool = False
    enable_reroute: bool = True
    trigger_choice: str = "lowest_depth"
    # | "highest_depth" | "random" | "min_activity"
    root_choice: str = "highest_depth"  # | "lowest_depth" | "random"
    max_slots_per_location: Optional[int] = None
    seed: int = 0
    strategy: str = "windowed"  # | "global"

    def __post_init__(self) -> None:
        valid_triggers = ("lowest_depth", "highest_depth", "random", "min_activity")
        if self.trigger_choice not in valid_triggers:
            raise ValueError(f"bad trigger_choice {self.trigger_choice!r}")
        if self.root_choice not in ("highest_depth", "lowest_depth", "random"):
            raise ValueError(f"bad root_choice {self.root_choice!r}")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"bad strategy {self.strategy!r}")


@dataclass(frozen=True)
class FingerprintLocation:
    """One Definition-1 location with its enumerated slots."""

    id: int
    primary: str
    primary_kind: str
    ffc_root: str
    trigger: str
    trigger_value: int
    ffc_gates: Tuple[str, ...]
    slots: Tuple[Slot, ...]

    @property
    def n_configurations(self) -> int:
        """Configurations of this location (product over its slots)."""
        total = 1
        for slot in self.slots:
            total *= slot.n_configs
        return total


@dataclass
class LocationCatalog:
    """All fingerprint locations found in one circuit."""

    circuit_name: str
    locations: List[FingerprintLocation] = field(default_factory=list)

    @property
    def n_locations(self) -> int:
        return len(self.locations)

    def slots(self) -> List[Slot]:
        """Flat slot list in deterministic (location, slot) order."""
        return [slot for location in self.locations for slot in location.slots]

    def slot_by_target(self, target: str) -> Slot:
        for slot in self.slots():
            if slot.target == target:
                return slot
        raise KeyError(f"no slot targets gate {target!r}")

    def __len__(self) -> int:
        return len(self.locations)

    def __iter__(self):
        return iter(self.locations)


def _eligible_roots(circuit: Circuit, primary: Gate) -> List[str]:
    """Inputs of ``primary`` that are FFC outputs feeding only ``primary``."""
    roots = []
    for net in primary.inputs:
        driver = circuit.driver(net)
        if driver is None or driver.kind in ("CONST0", "CONST1"):
            continue
        if circuit.is_output(net):
            continue
        consumers = circuit.fanouts(net)
        if len(consumers) == 1 and consumers[0] == primary.name:
            roots.append(net)
    return roots


def _choose(nets: Sequence[str], levels: Dict[str, int], policy: str, rng) -> str:
    if policy == "random":
        return rng.choice(list(nets))
    deepest = policy in ("highest_depth",)
    key = lambda n: (levels.get(n, 0), n)  # noqa: E731 - tiny tie-broken key
    return max(nets, key=key) if deepest else min(nets, key=key)


def find_locations(
    circuit: Circuit,
    options: Optional[FinderOptions] = None,
) -> LocationCatalog:
    """Enumerate fingerprint locations in deterministic topological order.

    Each gate is used as a slot target at most once across the catalog, so
    every slot can be toggled independently of all others.

    With an artifact store active (:func:`repro.store.active_store`) the
    catalog is content-addressed by the circuit's canonical structural
    digest plus a digest of the finder options, so resubmitting an
    identical netlist skips the whole discovery-and-ODC-validation pass
    (disk-tier cacheable: catalogs are plain picklable dataclasses).
    """
    from ..store.core import active_store

    store = active_store()
    if store is not None:
        from dataclasses import asdict

        from ..hashing import circuit_digest, options_digest

        key = "{}-{}".format(
            circuit_digest(circuit),
            options_digest(asdict(options or FinderOptions())),
        )
        return store.get_or_compute(
            "catalog", key, lambda: _traced_find(circuit, options)
        )
    return _traced_find(circuit, options)


def _traced_find(
    circuit: Circuit,
    options: Optional[FinderOptions],
) -> LocationCatalog:
    with telemetry.span(
        "fingerprint.locate", design=circuit.name, gates=circuit.n_gates
    ) as locate_span:
        catalog = _find_locations(circuit, options)
        locate_span.set(locations=len(catalog.locations))
    telemetry.count("fingerprint.catalogs")
    return catalog


def _find_locations(
    circuit: Circuit,
    options: Optional[FinderOptions],
) -> LocationCatalog:
    options = options or FinderOptions()
    rng = random.Random(options.seed)
    compiled = compile_circuit(circuit)
    levels = compiled.levels_by_name()
    probabilities: Optional[Dict[str, float]] = None
    if options.trigger_choice == "min_activity":
        # Power-aware extension: prefer triggers that rarely sit at the
        # primary gate's controlling value, so the ODC is rarely active
        # and the modified cone rarely toggles with the trigger.
        from ..power.activity import propagate_probabilities

        probabilities = propagate_probabilities(circuit)
    catalog = LocationCatalog(circuit.name)
    # Inverter reuse bookkeeping: an inverter referenced by some variant's
    # complemented literal (`reused`) must never become a slot target, and
    # a slot target must never be reused — otherwise widening the inverter
    # corrupts every literal that reads its output.  Both sets grow
    # monotonically during the scan, and the final exclusion set equals
    # the catalog's target set, so embedding/extraction reproduce the
    # same reuse decisions from the catalog alone.
    inverter_lists: Dict[str, List[str]] = {}
    for gate in circuit.gates:
        if gate.kind == "INV":
            inverter_lists.setdefault(gate.inputs[0], []).append(gate.name)
    reused_inverters: set = set()
    # Sources whose complement some variant references; any inverter of
    # such a source is banned as a target (and vice versa: once an INV
    # gate is a target, its source is banned for negative literals), so
    # fingerprint inverters never alias with modifiable gates.
    negative_sources_used: set = set()
    banned_negative_sources: set = set()
    used_targets: set = set()
    location_id = 0
    # ODC validation engine, built on first candidate: every admitted
    # location's (root, trigger, controlling-value) condition is proven
    # unobservable, so embedding at it can never change the function.
    engine: Optional[WindowedOdcEngine] = None

    def validate(root: str, trigger: str, trigger_value: int) -> bool:
        nonlocal engine
        if engine is None:
            engine = WindowedOdcEngine(circuit, strategy=options.strategy)
        verdict = engine.classify(root, trigger, trigger_value)
        if not verdict.confirmed:
            telemetry.count("fingerprint.candidates_rejected")
        return verdict.confirmed

    def effective_inverters() -> Dict[str, str]:
        index: Dict[str, str] = {}
        for source, names in inverter_lists.items():
            for name in names:
                if name not in used_targets:
                    index[source] = name
                    break
        return index

    for primary in compiled.gates_in_order():
        if not functions.has_odc(primary.kind, primary.n_inputs):
            continue
        if len(set(primary.inputs)) != len(primary.inputs):
            continue  # repeated nets make the local ODC analysis ambiguous
        roots = _eligible_roots(circuit, primary)
        if not roots:
            continue
        root = _choose(roots, levels, options.root_choice, rng)
        triggers = [n for n in primary.inputs if n != root]
        trigger_gate_kinds = {
            n: (circuit.driver(n).kind if circuit.driver(n) else None)
            for n in triggers
        }
        triggers = [
            n for n in triggers if trigger_gate_kinds[n] not in ("CONST0", "CONST1")
        ]
        if not triggers:
            continue
        trigger_value = functions.controlling_value(primary.kind)
        if probabilities is not None:
            def activation(net: str) -> float:
                p_one = probabilities.get(net, 0.5)
                return p_one if trigger_value == 1 else 1.0 - p_one

            trigger = min(triggers, key=lambda n: (activation(n), n))
        else:
            trigger = _choose(triggers, levels, options.trigger_choice, rng)
        if not validate(root, trigger, trigger_value):
            continue

        ffc = fanout_free_cone(circuit, root)
        slots: List[Slot] = []
        # IR interned IDs are topologically numbered, so the FFC's
        # members sort into evaluation order directly — no full-netlist
        # walk per location.
        for gate in compiled.gates_sorted(ffc):
            if gate.name in used_targets:
                continue
            if gate.name in reused_inverters:
                continue  # some variant reads this inverter's output
            if gate.kind == "INV" and gate.inputs[0] in negative_sources_used:
                continue  # a variant's literal realizes as (a twin of) it
            modifiable = (
                functions.has_odc(gate.kind, gate.n_inputs)
                or gate.n_inputs == 1
                or (options.allow_xor_targets and gate.kind in ("XOR", "XNOR"))
            )
            if not modifiable:
                continue
            inverters = effective_inverters()
            variants = slot_variants(
                circuit,
                gate,
                trigger,
                trigger_value,
                allow_xor_targets=options.allow_xor_targets,
                enable_reroute=options.enable_reroute,
                inverters=inverters,
                banned_negative_sources=banned_negative_sources,
            )
            if not variants:
                continue
            used_targets.add(gate.name)
            if gate.kind == "INV":
                banned_negative_sources.add(gate.inputs[0])
            for variant in variants:
                for literal in variant.literals:
                    if literal.positive:
                        continue
                    negative_sources_used.add(literal.net)
                    if literal.net in inverters:
                        reused_inverters.add(inverters[literal.net])
            slots.append(
                Slot(
                    location_id=location_id,
                    primary=primary.name,
                    target=gate.name,
                    target_kind=gate.kind,
                    trigger=trigger,
                    trigger_value=trigger_value,
                    variants=tuple(variants),
                )
            )
            if (
                options.max_slots_per_location is not None
                and len(slots) >= options.max_slots_per_location
            ):
                break
        if not slots:
            continue
        catalog.locations.append(
            FingerprintLocation(
                id=location_id,
                primary=primary.name,
                primary_kind=primary.kind,
                ffc_root=root,
                trigger=trigger,
                trigger_value=trigger_value,
                ffc_gates=tuple(sorted(ffc)),
                slots=tuple(slots),
            )
        )
        location_id += 1
    return catalog
