"""Command-line front end — the paper's "circuit modifier" as a tool.

Subcommands::

    repro-fp locations <design>                 list fingerprint locations
    repro-fp embed <design> --value N -o out.v  emit one fingerprint copy
    repro-fp embed <design> --buyer NAME ...    buyer-keyed copy
    repro-fp extract <suspect> --golden <design>  read a fingerprint back
    repro-fp verify <left> <right>              verification ladder (budgeted)
    repro-fp batch <design> --copies N --jobs J generate+verify N copies
    repro-fp measure <design>                   area / delay / power
    repro-fp audit <design>                     verify every variant (CEC)
    repro-fp inject <design>                    fault-injection campaign
    repro-fp bench <name> [-o out.v]            emit a suite circuit
    repro-fp tables [quick|medium|full]         regenerate paper tables

Designs are read by extension: ``.blif`` files are parsed and technology
mapped (the ABC-replacement path of the paper's flow); ``.v`` files are
read as structural Verilog over the generic library.  All commands are
deterministic, so ``extract`` can rebuild the golden design's location
catalog instead of needing a side-channel database.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .analysis import measure
from .budget import Budget
from .errors import DesignLoadError, ReproError, annotate
from .flows import LadderConfig, verify_equivalence
from .bench import (
    build_benchmark,
    render_figure7,
    render_table2,
    render_table3,
    run_figure7,
    run_table2,
    run_table3,
    suite_for_budget,
)
from .fingerprint import (
    BuyerRegistry,
    FingerprintCodec,
    capacity,
    embed,
    extract,
    find_locations,
)
from .netlist import Circuit, read_blif, read_verilog, save_verilog
from .sim import check_equivalence
from .techmap import map_network


def load_design(path: str) -> Circuit:
    """Read a design file (.blif is parsed and mapped; .v is structural)."""
    try:
        if path.endswith(".blif"):
            return map_network(read_blif(path))
        if path.endswith(".v"):
            return read_verilog(path)
    except OSError as exc:
        raise DesignLoadError(
            f"cannot read {path!r}: {exc}", stage="load"
        ) from exc
    except ReproError as exc:
        raise annotate(exc, stage="load", design=path)
    raise DesignLoadError(
        f"unsupported design extension: {path!r} (.blif or .v)", stage="load"
    )


def _ladder_config(args: argparse.Namespace) -> LadderConfig:
    """Build a LadderConfig from the shared budget/ladder CLI knobs."""
    return LadderConfig(
        max_exhaustive_inputs=args.max_exhaustive_inputs,
        sat_budget=Budget(
            deadline_s=args.budget_seconds,
            max_conflicts=args.max_conflicts,
            max_decisions=args.max_decisions,
        ),
        use_sat=not args.no_sat,
        n_random_vectors=args.random_vectors,
    )


def _add_ladder_options(p: argparse.ArgumentParser) -> None:
    group = p.add_argument_group(
        "verification ladder",
        "exhaustive simulation -> budgeted SAT CEC -> random-simulation "
        "fallback; a spent budget degrades the verdict instead of hanging",
    )
    group.add_argument(
        "--budget-seconds", type=float, default=30.0, metavar="S",
        help="wall-clock budget for the SAT tier (default: 30)",
    )
    group.add_argument(
        "--max-conflicts", type=int, default=2_000_000, metavar="N",
        help="SAT conflict budget (default: 2000000)",
    )
    group.add_argument(
        "--max-decisions", type=int, default=None, metavar="N",
        help="SAT decision budget (default: unlimited)",
    )
    group.add_argument(
        "--max-exhaustive-inputs", type=int, default=16, metavar="N",
        help="widest input count simulated exhaustively (default: 16)",
    )
    group.add_argument(
        "--random-vectors", type=int, default=8192, metavar="N",
        help="vectors for the random fallback tier (default: 8192)",
    )
    group.add_argument(
        "--no-sat", action="store_true",
        help="skip the SAT tier (straight to random simulation)",
    )


def _cmd_locations(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    catalog = find_locations(design)
    report = capacity(catalog)
    print(f"design {design.name}: {design.n_gates} gates")
    print(
        f"{report.n_locations} locations, {report.n_slots} slots, "
        f"{report.n_variants} variants, {report.bits:.2f} bits"
    )
    if args.verbose:
        for location in catalog:
            slots = ", ".join(
                f"{s.target}[{len(s.variants)}v]" for s in location.slots
            )
            print(
                f"  loc {location.id}: primary={location.primary} "
                f"root={location.ffc_root} trigger={location.trigger} "
                f"slots: {slots}"
            )
    return 0


def _cmd_embed(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    catalog = find_locations(design)
    codec = FingerprintCodec(catalog)
    if codec.combinations < 2:
        raise SystemExit("design offers no fingerprint locations")
    if args.buyer is not None:
        registry = BuyerRegistry(catalog, seed=args.seed)
        record = registry.register(args.buyer)
        value = record.value
    else:
        value = args.value % codec.combinations
    copy = embed(design, catalog, codec.encode(value))
    if args.verify:
        verdict = check_equivalence(design, copy.circuit)
        if not verdict.equivalent:
            raise SystemExit("internal error: embedding broke functionality")
        print(f"verified equivalent ({'exhaustive' if verdict.complete else 'random'})")
    print(f"embedded fingerprint value {value} "
          f"({copy.n_active} modifications)")
    if args.output:
        save_verilog(copy.circuit, args.output)
        print(f"wrote {args.output}")
    else:
        from .netlist import write_verilog

        sys.stdout.write(write_verilog(copy.circuit))
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    golden = load_design(args.golden)
    suspect = load_design(args.suspect)
    catalog = find_locations(golden)
    codec = FingerprintCodec(catalog)
    if args.structural:
        from .fingerprint import extract_structural

        result = extract_structural(suspect, golden, catalog)
    else:
        result = extract(suspect, golden, catalog)
    value = codec.decode(result.assignment)
    print(f"fingerprint value: {value}")
    if result.tampered:
        print(f"WARNING: {len(result.tampered)} tampered slots: "
              f"{', '.join(result.tampered[:8])}")
        return 2
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    left = load_design(args.left)
    right = load_design(args.right)
    report = verify_equivalence(left, right, config=_ladder_config(args))
    print(f"tiers tried: {' -> '.join(report.tiers_tried)}")
    if report.equivalent:
        print(f"EQUIVALENT — {report.summary()}")
        if report.budget_hit:
            print("note: SAT budget spent; verdict is probabilistic "
                  f"(confidence {report.confidence:.4f})")
        return 0
    print(f"NOT equivalent — {report.summary()}")
    if report.counterexample is not None:
        where = f" on {report.output}" if report.output else ""
        print(f"  counterexample{where}: {report.counterexample}")
    return 1


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from .flows import run_batch

    design = load_design(args.design)
    result = run_batch(
        design,
        n_copies=args.copies,
        jobs=args.jobs,
        seed=args.seed,
        ladder=_ladder_config(args),
        measure_overheads=args.measure,
    )
    print(result.summary())
    if args.verbose:
        for record in result.records:
            line = (
                f"  value {record.value}: "
                f"{'equivalent' if record.equivalent else 'MISMATCH'} "
                f"[{record.tier}{', proven' if record.proven else ''}] "
                f"{record.n_modifications} mods, {record.seconds:.2f}s"
            )
            if record.area_overhead is not None:
                line += (
                    f", overhead area {record.area_overhead:+.1%} "
                    f"delay {record.delay_overhead:+.1%} "
                    f"power {record.power_overhead:+.1%}"
                )
            print(line)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2)
        print(f"wrote {args.json}")
    return 0 if result.n_mismatch == 0 else 1


def _cmd_measure(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    if args.full:
        from .analysis import design_report

        print(design_report(design))
        return 0
    metrics = measure(design)
    print(f"design: {metrics.name}")
    print(f"gates:  {metrics.gates}")
    print(f"depth:  {metrics.depth}")
    print(f"area:   {metrics.area:.0f}")
    print(f"delay:  {metrics.delay:.3f}")
    print(f"power:  {metrics.power:.1f}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .fingerprint import audit_catalog

    design = load_design(args.design)
    catalog = find_locations(design)
    report = audit_catalog(design, catalog, max_variants=args.max_variants)
    print(report.summary())
    for failure in report.failures:
        print(f"  FAILED: slot {failure.target} variant {failure.variant_index}")
    return 0 if report.clean else 1


def _cmd_inject(args: argparse.Namespace) -> int:
    from .faultinject import run_netlist_campaign, run_text_campaign

    design = load_design(args.design)
    report = run_netlist_campaign(
        [design], trials=args.trials, seed=args.seed
    )
    if args.text:
        from .netlist import write_verilog

        text_report = run_text_campaign(
            {design.name: write_verilog(design)},
            parser=read_verilog_text,
            trials=args.trials,
            seed=args.seed,
        )
        report.records.extend(text_report.records)
    print(report.summary())
    return 0 if report.clean else 1


def read_verilog_text(text: str) -> Circuit:
    """Parse structural Verilog from a string (text-campaign helper)."""
    from .netlist.verilog import parse_verilog

    return parse_verilog(text)


def _cmd_bench(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.name)
    print(f"{args.name}: {circuit.n_gates} gates, depth {circuit.depth()}")
    if args.output:
        save_verilog(circuit, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    names = suite_for_budget(args.budget)
    print(f"suite: {', '.join(names)}\n")
    print(render_table2(run_table2(names)))
    print()
    table3_rows = run_table3(names)
    print(render_table3(table3_rows))
    print()
    print(render_figure7(run_figure7(names, table3_rows=table3_rows)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fp",
        description="ODC circuit fingerprinting (Dunbar & Qu, DAC 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("locations", help="list fingerprint locations")
    p.add_argument("design")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_locations)

    p = sub.add_parser("embed", help="emit one fingerprinted copy")
    p.add_argument("design")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--value", type=int, help="fingerprint integer")
    group.add_argument("--buyer", help="buyer name (keyed fingerprint)")
    p.add_argument("-o", "--output", help="output Verilog path")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-verify", dest="verify", action="store_false")
    p.set_defaults(func=_cmd_embed)

    p = sub.add_parser("extract", help="read a fingerprint from a suspect")
    p.add_argument("suspect")
    p.add_argument("--golden", required=True)
    p.add_argument("--structural", action="store_true",
                   help="rename-robust extraction (needs a twin-free golden)")
    p.set_defaults(func=_cmd_extract)

    p = sub.add_parser(
        "verify",
        help="combinational equivalence check (budgeted ladder)",
        description="Check two designs for equivalence via the verification "
        "ladder: exhaustive simulation when the input count permits, then "
        "budgeted SAT CEC, then random simulation with an explicit "
        "confidence figure.  Exhausting the SAT budget degrades the verdict "
        "rather than hanging the run.",
    )
    p.add_argument("left")
    p.add_argument("right")
    _add_ladder_options(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "batch",
        help="generate and verify many fingerprinted copies",
        description="Issue N distinct fingerprint values, embed each one, "
        "and verify every copy against the base through the budgeted ladder "
        "backed by one incremental CEC session per worker process.  "
        "--jobs parallelizes across processes; verdicts are identical to a "
        "serial run.  Exit status 1 if any copy fails verification.",
    )
    p.add_argument("design")
    p.add_argument("--copies", type=int, default=8, metavar="N",
                   help="distinct copies to issue (default: 8)")
    p.add_argument("--jobs", type=int, default=1, metavar="J",
                   help="worker processes (default: 1)")
    p.add_argument("--seed", type=int, default=0,
                   help="fingerprint-value selection seed (default: 0)")
    p.add_argument("--measure", action="store_true",
                   help="record per-copy area/delay/power overheads")
    p.add_argument("--json", metavar="PATH",
                   help="write per-copy records as JSON")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print one line per copy")
    _add_ladder_options(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("measure", help="area / delay / power of a design")
    p.add_argument("design")
    p.add_argument("--full", action="store_true",
                   help="full structural/timing/power/fingerprint report")
    p.set_defaults(func=_cmd_measure)

    p = sub.add_parser("audit", help="formally verify every variant")
    p.add_argument("design")
    p.add_argument("--max-variants", type=int, default=None)
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "inject",
        help="run a fault-injection campaign against a design",
        description="Clone the design, inject each netlist mutator "
        "(stuck-at, gate swap, dangling wire, duplicate driver, "
        "combinational cycle), push every mutant through the full "
        "fingerprinting flow, and report whether each fault surfaced as a "
        "typed error or a verification mismatch.  Exit status 0 means the "
        "campaign was clean (no untyped exception escaped).",
    )
    p.add_argument("design")
    p.add_argument("--trials", type=int, default=1,
                   help="injections per (design, mutator) pair (default: 1)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--text", action="store_true",
                   help="also corrupt the serialized form and re-parse it")
    p.set_defaults(func=_cmd_inject)

    p = sub.add_parser("bench", help="emit a suite benchmark circuit")
    p.add_argument("name")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("tables", help="regenerate the paper's tables")
    p.add_argument("budget", nargs="?", default=None,
                   choices=[None, "quick", "medium", "full"])
    p.set_defaults(func=_cmd_tables)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc.diagnostic()}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
