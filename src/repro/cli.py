"""Command-line front end — the paper's "circuit modifier" as a tool.

Subcommands::

    repro-fp locations <design>                 list fingerprint locations
    repro-fp embed <design> --value N -o out.v  emit one fingerprint copy
    repro-fp embed <design> --buyer NAME ...    buyer-keyed copy
    repro-fp extract <suspect> --golden <design>  read a fingerprint back
    repro-fp verify <left> <right>              verification ladder (budgeted)
    repro-fp batch <design> --copies N --jobs J generate+verify N copies
    repro-fp measure <design>                   area / delay / power
    repro-fp audit <design>                     verify every variant (CEC)
    repro-fp inject <design>                    fault-injection campaign
    repro-fp campaign run <design> --db FILE    persistent resumable campaign
    repro-fp campaign {status,resume,report} --db FILE
    repro-fp bench <name> [-o out.v]            emit a suite circuit
    repro-fp tables [quick|medium|full]         regenerate paper tables

Designs are read by extension: ``.blif`` files are parsed and technology
mapped (the ABC-replacement path of the paper's flow); ``.v`` files are
read as structural Verilog over the generic library.  All commands are
deterministic, so ``extract`` can rebuild the golden design's location
catalog instead of needing a side-channel database.

Every subcommand shares three output options.  ``--json [PATH]`` emits
one envelope shape — ``{"tool", "version", "command", "telemetry",
"result"}`` — to PATH, or to stdout (suppressing the human-readable
text) when given without an argument.  ``--trace FILE`` records nested
telemetry spans across the whole run and writes them as a Chrome
trace-event file loadable in ``chrome://tracing`` / Perfetto.
``--metrics`` records counters and histograms into the envelope's
``telemetry`` section.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Tuple

from . import telemetry
from .analysis import measure
from .api import load_circuit
from .budget import Budget
from .errors import ReproError
from .flows import LadderConfig, run_batch_flow, run_ladder
from .bench import (
    build_benchmark,
    render_figure7,
    render_table2,
    render_table3,
    run_figure7,
    run_table2,
    run_table3,
    suite_for_budget,
)
from .fingerprint import (
    BuyerRegistry,
    FingerprintCodec,
    capacity,
    embed,
    extract,
    find_locations,
)
from .netlist import Circuit, save_verilog
from .sim import check_equivalence

CommandResult = Tuple[int, Dict[str, Any]]


def load_design(path: str) -> Circuit:
    """Read a design file (.blif is parsed and mapped; .v is structural)."""
    return load_circuit(path)


def _say(args: argparse.Namespace, *lines: str) -> None:
    """Print human-readable output — unless JSON owns stdout."""
    if getattr(args, "json", None) == "-":
        return
    for line in lines:
        print(line, flush=True)


def _ladder_config(args: argparse.Namespace) -> LadderConfig:
    """Build a LadderConfig from the shared budget/ladder CLI knobs."""
    return LadderConfig(
        max_exhaustive_inputs=args.max_exhaustive_inputs,
        sat_budget=Budget(
            deadline_s=args.budget_seconds,
            max_conflicts=args.max_conflicts,
            max_decisions=args.max_decisions,
        ),
        use_sat=not args.no_sat,
        n_random_vectors=args.random_vectors,
        sat_simplify=not args.no_simplify,
        sat_portfolio=args.portfolio,
    )


def _add_ladder_options(p: argparse.ArgumentParser) -> None:
    group = p.add_argument_group(
        "verification ladder",
        "exhaustive simulation -> budgeted SAT CEC -> random-simulation "
        "fallback; a spent budget degrades the verdict instead of hanging",
    )
    group.add_argument(
        "--budget-seconds", type=float, default=30.0, metavar="S",
        help="wall-clock budget for the SAT tier (default: 30)",
    )
    group.add_argument(
        "--max-conflicts", type=int, default=2_000_000, metavar="N",
        help="SAT conflict budget (default: 2000000)",
    )
    group.add_argument(
        "--max-decisions", type=int, default=None, metavar="N",
        help="SAT decision budget (default: unlimited)",
    )
    group.add_argument(
        "--max-exhaustive-inputs", type=int, default=16, metavar="N",
        help="widest input count simulated exhaustively (default: 16)",
    )
    group.add_argument(
        "--random-vectors", type=int, default=8192, metavar="N",
        help="vectors for the random fallback tier (default: 8192)",
    )
    group.add_argument(
        "--no-sat", action="store_true",
        help="skip the SAT tier (straight to random simulation)",
    )
    group.add_argument(
        "--no-simplify", action="store_true",
        help="skip SatELite-style CNF preprocessing before scratch miter "
             "solves (preprocessing is verdict-neutral and on by default)",
    )
    group.add_argument(
        "--portfolio", type=int, default=0, metavar="N",
        help="race N solver configurations per hard incremental SAT "
             "obligation, first verdict wins (default: 0 = off)",
    )


def _add_common_options(p: argparse.ArgumentParser) -> None:
    group = p.add_argument_group("output & telemetry")
    group.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the unified JSON envelope to PATH "
        "(or stdout when no PATH is given)",
    )
    group.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record telemetry spans; write a Chrome trace-event file",
    )
    group.add_argument(
        "--metrics", action="store_true",
        help="record telemetry counters/histograms into the JSON envelope",
    )
    group.add_argument(
        "--store", nargs="?", const="", default=None, metavar="DIR",
        help="activate the content-addressed artifact store for this "
        "invocation (disk tier at DIR; memory-only when no DIR is given); "
        "the envelope gains a cache hit/miss section",
    )


def _cmd_locations(args: argparse.Namespace) -> CommandResult:
    from .fingerprint import FinderOptions

    design = load_design(args.design)
    catalog = find_locations(design, FinderOptions(strategy=args.strategy))
    report = capacity(catalog)
    _say(
        args,
        f"design {design.name}: {design.n_gates} gates",
        f"{report.n_locations} locations, {report.n_slots} slots, "
        f"{report.n_variants} variants, {report.bits:.2f} bits "
        f"({args.strategy} engine)",
    )
    result: Dict[str, Any] = {
        "design": design.name,
        "strategy": args.strategy,
        "n_gates": design.n_gates,
        "n_locations": report.n_locations,
        "n_slots": report.n_slots,
        "n_variants": report.n_variants,
        "bits": report.bits,
    }
    if args.verbose:
        result["locations"] = []
        for location in catalog:
            slots = ", ".join(
                f"{s.target}[{len(s.variants)}v]" for s in location.slots
            )
            _say(
                args,
                f"  loc {location.id}: primary={location.primary} "
                f"root={location.ffc_root} trigger={location.trigger} "
                f"slots: {slots}",
            )
            result["locations"].append(
                {
                    "id": location.id,
                    "primary": location.primary,
                    "root": location.ffc_root,
                    "trigger": location.trigger,
                    "slots": [
                        {"target": s.target, "n_variants": len(s.variants)}
                        for s in location.slots
                    ],
                }
            )
    return 0, result


def _cmd_embed(args: argparse.Namespace) -> CommandResult:
    design = load_design(args.design)
    catalog = find_locations(design)
    codec = FingerprintCodec(catalog)
    if codec.combinations < 2:
        raise SystemExit("design offers no fingerprint locations")
    if args.buyer is not None:
        registry = BuyerRegistry(catalog, seed=args.seed)
        record = registry.register(args.buyer)
        value = record.value
    else:
        value = args.value % codec.combinations
    copy = embed(design, catalog, codec.encode(value))
    verify_method = None
    if args.verify:
        verdict = check_equivalence(design, copy.circuit)
        if not verdict.equivalent:
            raise SystemExit("internal error: embedding broke functionality")
        verify_method = "exhaustive" if verdict.complete else "random"
        _say(args, f"verified equivalent ({verify_method})")
    _say(args, f"embedded fingerprint value {value} "
               f"({copy.n_active} modifications)")
    if args.output:
        save_verilog(copy.circuit, args.output)
        _say(args, f"wrote {args.output}")
    elif args.json != "-":
        from .netlist import write_verilog

        sys.stdout.write(write_verilog(copy.circuit))
    result = {
        "design": design.name,
        "value": value,
        "buyer": args.buyer,
        "n_modifications": copy.n_active,
        "verified": bool(args.verify),
        "verify_method": verify_method,
        "output": args.output,
    }
    return 0, result


def _cmd_extract(args: argparse.Namespace) -> CommandResult:
    golden = load_design(args.golden)
    suspect = load_design(args.suspect)
    catalog = find_locations(golden)
    codec = FingerprintCodec(catalog)
    if args.structural:
        from .fingerprint import extract_structural

        extraction = extract_structural(suspect, golden, catalog)
    else:
        extraction = extract(suspect, golden, catalog)
    value = codec.decode(extraction.assignment)
    _say(args, f"fingerprint value: {value}")
    result = {
        "value": value,
        "tampered": list(extraction.tampered),
    }
    if extraction.tampered:
        _say(
            args,
            f"WARNING: {len(extraction.tampered)} tampered slots: "
            f"{', '.join(extraction.tampered[:8])}",
        )
        return 2, result
    return 0, result


def _cmd_verify(args: argparse.Namespace) -> CommandResult:
    left = load_design(args.left)
    right = load_design(args.right)
    report = run_ladder(left, right, config=_ladder_config(args))
    _say(args, f"tiers tried: {' -> '.join(report.tiers_tried)}")
    if report.equivalent:
        _say(args, f"EQUIVALENT — {report.summary()}")
        if report.budget_hit:
            _say(args, "note: SAT budget spent; verdict is probabilistic "
                       f"(confidence {report.confidence:.4f})")
        return 0, report.as_dict()
    _say(args, f"NOT equivalent — {report.summary()}")
    if report.counterexample is not None:
        where = f" on {report.output}" if report.output else ""
        _say(args, f"  counterexample{where}: {report.counterexample}")
    return 1, report.as_dict()


def _cmd_batch(args: argparse.Namespace) -> CommandResult:
    from .flows import FlowOptions

    design = load_design(args.design)
    result = run_batch_flow(
        design,
        n_copies=args.copies,
        opts=FlowOptions(
            jobs=args.jobs,
            seed=args.seed,
            ladder=_ladder_config(args),
            measure_overheads=args.measure,
        ),
    )
    _say(args, result.summary())
    if args.verbose:
        for record in result.records:
            line = (
                f"  value {record.value}: "
                f"{'equivalent' if record.equivalent else 'MISMATCH'} "
                f"[{record.tier}{', proven' if record.proven else ''}] "
                f"{record.n_modifications} mods, {record.seconds:.2f}s"
            )
            if record.area_overhead is not None:
                line += (
                    f", overhead area {record.area_overhead:+.1%} "
                    f"delay {record.delay_overhead:+.1%} "
                    f"power {record.power_overhead:+.1%}"
                )
            _say(args, line)
    return (0 if result.n_mismatch == 0 else 1), result.as_dict()


def _cmd_measure(args: argparse.Namespace) -> CommandResult:
    design = load_design(args.design)
    if args.full:
        from .analysis import design_report

        report = design_report(design)
        _say(args, report)
        return 0, {"design": design.name, "report": report}
    metrics = measure(design)
    _say(
        args,
        f"design: {metrics.name}",
        f"gates:  {metrics.gates}",
        f"depth:  {metrics.depth}",
        f"area:   {metrics.area:.0f}",
        f"delay:  {metrics.delay:.3f}",
        f"power:  {metrics.power:.1f}",
    )
    return 0, metrics.as_dict()


def _cmd_audit(args: argparse.Namespace) -> CommandResult:
    from .fingerprint import audit_catalog

    design = load_design(args.design)
    catalog = find_locations(design)
    report = audit_catalog(design, catalog, max_variants=args.max_variants)
    _say(args, report.summary())
    for failure in report.failures:
        _say(args, f"  FAILED: slot {failure.target} variant {failure.variant_index}")
    result = {
        "design": design.name,
        "n_checked": report.n_checked,
        "clean": report.clean,
        "failures": [
            {
                "target": failure.target,
                "variant_index": failure.variant_index,
                "method": failure.method,
            }
            for failure in report.failures
        ],
    }
    return (0 if report.clean else 1), result


def _cmd_inject(args: argparse.Namespace) -> CommandResult:
    from .faultinject import run_netlist_campaign, run_text_campaign

    design = load_design(args.design)
    report = run_netlist_campaign(
        [design], trials=args.trials, seed=args.seed
    )
    if args.text:
        from .netlist import write_verilog

        text_report = run_text_campaign(
            {design.name: write_verilog(design)},
            parser=read_verilog_text,
            trials=args.trials,
            seed=args.seed,
        )
        report.records.extend(text_report.records)
    _say(args, report.summary())
    result = {
        "design": design.name,
        "n_injections": len(report.records),
        "clean": report.clean,
        "counts": report.counts(),
        "by_injector": report.by_injector(),
    }
    return (0 if report.clean else 1), result


def _cmd_attack(args: argparse.Namespace) -> CommandResult:
    from .attack import ATTACK_NAMES, AttackConfig, run_attack_suite

    design = load_design(args.design)
    names = (
        [n.strip() for n in args.attacks.split(",") if n.strip()]
        if args.attacks
        else None
    )
    config = AttackConfig(
        seed=args.seed,
        n_vectors=args.vectors,
        max_passes=args.passes,
        rewrite_fraction=args.rewrite_fraction,
        colluders=args.colluders,
        collusion_strategy=args.strategy,
    )
    report = run_attack_suite(
        design, attacks=names, config=config, ladder=_ladder_config(args)
    )
    _say(
        args,
        f"{report.design}: {report.slots_total} slots, "
        f"{report.bits_total:.1f} fingerprint bits",
    )
    for outcome in report.outcomes:
        verdict = "equivalent" if outcome.equivalent else "NOT EQUIVALENT"
        _say(
            args,
            f"  {outcome.attack:10s} {verdict:15s} "
            f"bits {outcome.bits_surviving:6.1f}/{outcome.bits_total:.1f}  "
            f"area {outcome.area_cost:+.3f}  delay {outcome.delay_cost:+.3f}  "
            f"edits {outcome.edits}",
        )
    for name, reason in report.skipped.items():
        _say(args, f"  {name:10s} skipped ({reason})")
    return (0 if report.all_equivalent else 1), report.as_dict()


def _cmd_campaign(args: argparse.Namespace) -> CommandResult:
    from .campaign import (
        CampaignOptions,
        CampaignSpec,
        build_report,
        campaign_status,
        resume_campaign,
        run_campaign,
        write_report,
    )

    if args.action == "status":
        status = campaign_status(args.db)
        counts = status["counts"]
        states = ", ".join(f"{k}={v}" for k, v in sorted(counts.items())) or "empty"
        _say(
            args,
            f"campaign {args.db}: {status['n_jobs']} jobs ({states})",
            "complete" if status["complete"] else
            f"{status['terminal']}/{status['n_jobs']} terminal",
        )
        return 0, status

    if args.action == "report":
        report = build_report(args.db)
        if args.out:
            paths = write_report(args.db, args.out)
            _say(args, f"wrote {paths['json']} and {paths['html']}")
        totals = report["totals"]
        _say(
            args,
            f"campaign {args.db}: {totals['n_jobs']} jobs, "
            f"{'complete' if totals['complete'] else 'incomplete'}, "
            f"{'clean' if totals['clean'] else 'FAILURES'}",
        )
        return (0 if totals["clean"] else 1), report

    options = CampaignOptions(
        jobs=args.jobs,
        timeout_s=args.timeout if args.timeout > 0 else None,
        retry_attempts=args.retries,
        backoff_s=args.backoff,
        overwrite=args.overwrite,
        max_jobs=args.max_jobs,
        ladder=_ladder_config(args),
        measure_overheads=args.measure,
    )
    if args.action == "resume":
        if args.designs:
            raise SystemExit("campaign resume takes no designs "
                             "(the spec is stored in the DB)")
        summary = resume_campaign(args.db, options)
    else:  # run
        if not args.designs:
            raise SystemExit("campaign run needs at least one design")
        spec = CampaignSpec(
            kind=args.kind,
            designs=tuple(args.designs),
            n_copies=args.copies,
            trials=args.trials,
            injectors=(tuple(args.injectors.split(","))
                       if args.injectors else None),
            seed=args.seed,
        )
        summary = run_campaign(spec, args.db, options)
    _say(args, summary.summary())
    # Failed/faulty jobs are the only failure condition; a clean
    # interrupt (Ctrl-C, --max-jobs budget) still exits 0 so checkpointed
    # runs can be chained.
    return (0 if summary.clean else 1), summary.as_dict()


def read_verilog_text(text: str) -> Circuit:
    """Parse structural Verilog from a string (text-campaign helper)."""
    from .netlist.verilog import parse_verilog

    return parse_verilog(text)


def _cmd_serve(args: argparse.Namespace) -> CommandResult:
    from .budget import Budget as _Budget
    from .service import Server, TenantQuota
    from .store.core import ArtifactStore

    budget = None
    if args.quota_budget_seconds is not None:
        budget = _Budget(deadline_s=args.quota_budget_seconds)
    quota = TenantQuota(max_pending=args.quota_max_pending, budget=budget)
    store = ArtifactStore(
        root=(getattr(args, "store", None) or None),
        memory_entries=args.memory_entries,
    )
    # The service writes its own whole-lifetime trace on shutdown; keep
    # main() from overwriting that file with this (empty) parent trace.
    trace_path, args.trace = getattr(args, "trace", None), None
    server = Server(
        host=args.host,
        port=args.port,
        store=store,
        workers=args.workers,
        default_quota=quota,
        trace_path=trace_path,
        max_requests=args.max_requests,
    )
    server.start_in_thread()
    _say(args, f"repro-fp service on http://{args.host}:{server.port} "
               f"({args.workers} worker processes, "
               f"store={'disk:' + store.root if store.root else 'memory'}, "
               f"Ctrl-C to stop)")
    try:
        while server._thread is not None and server._thread.is_alive():
            server._thread.join(0.5)
    except KeyboardInterrupt:
        _say(args, "shutting down")
    finally:
        server.stop_thread()
    stats = server.queue.stats() if server.queue is not None else {}
    result: Dict[str, Any] = {
        "host": args.host,
        "port": server.port,
        "store": store.root or "memory",
        "cache": store.cache_snapshot(),
        "executor": server._executor_stats(),
        **stats,
    }
    return 0, result


def _cmd_bench(args: argparse.Namespace) -> CommandResult:
    circuit = build_benchmark(args.name)
    depth = circuit.depth()
    _say(args, f"{args.name}: {circuit.n_gates} gates, depth {depth}")
    if args.output:
        save_verilog(circuit, args.output)
        _say(args, f"wrote {args.output}")
    result = {
        "name": args.name,
        "gates": circuit.n_gates,
        "depth": depth,
        "output": args.output,
    }
    return 0, result


def _cmd_tables(args: argparse.Namespace) -> CommandResult:
    names = suite_for_budget(args.budget)
    _say(args, f"suite: {', '.join(names)}\n")
    table2 = render_table2(run_table2(names))
    _say(args, table2, "")
    table3_rows = run_table3(names)
    table3 = render_table3(table3_rows)
    _say(args, table3, "")
    figure7 = render_figure7(run_figure7(names, table3_rows=table3_rows))
    _say(args, figure7)
    result = {
        "suite": list(names),
        "table2": table2,
        "table3": table3,
        "figure7": figure7,
    }
    return 0, result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fp",
        description="ODC circuit fingerprinting (Dunbar & Qu, DAC 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "locations", aliases=["locate"], help="list fingerprint locations"
    )
    p.add_argument("design")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument(
        "--strategy", choices=("windowed", "global"), default="windowed",
        help="ODC validation engine: local windows with simulation and "
        "last-resort SAT (windowed, default) or the full-circuit "
        "baseline (global); verdicts are identical",
    )
    p.set_defaults(func=_cmd_locations)

    p = sub.add_parser("embed", help="emit one fingerprinted copy")
    p.add_argument("design")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--value", type=int, help="fingerprint integer")
    group.add_argument("--buyer", help="buyer name (keyed fingerprint)")
    p.add_argument("-o", "--output", help="output Verilog path")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-verify", dest="verify", action="store_false")
    p.set_defaults(func=_cmd_embed)

    p = sub.add_parser("extract", help="read a fingerprint from a suspect")
    p.add_argument("suspect")
    p.add_argument("--golden", required=True)
    p.add_argument("--structural", action="store_true",
                   help="rename-robust extraction (needs a twin-free golden)")
    p.set_defaults(func=_cmd_extract)

    p = sub.add_parser(
        "verify",
        help="combinational equivalence check (budgeted ladder)",
        description="Check two designs for equivalence via the verification "
        "ladder: exhaustive simulation when the input count permits, then "
        "budgeted SAT CEC, then random simulation with an explicit "
        "confidence figure.  Exhausting the SAT budget degrades the verdict "
        "rather than hanging the run.",
    )
    p.add_argument("left")
    p.add_argument("right")
    _add_ladder_options(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "batch",
        help="generate and verify many fingerprinted copies",
        description="Issue N distinct fingerprint values, embed each one, "
        "and verify every copy against the base through the budgeted ladder "
        "backed by one incremental CEC session per worker process.  "
        "--jobs parallelizes across processes; verdicts are identical to a "
        "serial run.  Exit status 1 if any copy fails verification.",
    )
    p.add_argument("design")
    p.add_argument("--copies", type=int, default=8, metavar="N",
                   help="distinct copies to issue (default: 8)")
    p.add_argument("--jobs", type=int, default=1, metavar="J",
                   help="worker processes (default: 1)")
    p.add_argument("--seed", type=int, default=0,
                   help="fingerprint-value selection seed (default: 0)")
    p.add_argument("--measure", action="store_true",
                   help="record per-copy area/delay/power overheads")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print one line per copy")
    _add_ladder_options(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("measure", help="area / delay / power of a design")
    p.add_argument("design")
    p.add_argument("--full", action="store_true",
                   help="full structural/timing/power/fingerprint report")
    p.set_defaults(func=_cmd_measure)

    p = sub.add_parser("audit", help="formally verify every variant")
    p.add_argument("design")
    p.add_argument("--max-variants", type=int, default=None)
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "inject",
        help="run a fault-injection campaign against a design",
        description="Clone the design, inject each netlist mutator "
        "(stuck-at, gate swap, dangling wire, duplicate driver, "
        "combinational cycle), push every mutant through the full "
        "fingerprinting flow, and report whether each fault surfaced as a "
        "typed error or a verification mismatch.  Exit status 0 means the "
        "campaign was clean (no untyped exception escaped).",
    )
    p.add_argument("design")
    p.add_argument("--trials", type=int, default=1,
                   help="injections per (design, mutator) pair (default: 1)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--text", action="store_true",
                   help="also corrupt the serialized form and re-parse it")
    p.set_defaults(func=_cmd_inject)

    p = sub.add_parser(
        "attack",
        help="run the adversarial attack suite against a fingerprinted design",
        description="Embed a victim fingerprint in the design, run each "
        "attack engine (resubstitution, rewriting, sweeping, renaming, "
        "pin remapping, collusion), verify every attacked copy stays "
        "functionally equivalent through the verification ladder, and "
        "report how many fingerprint bits survive each attack versus its "
        "area/delay cost.  Exit status 0 means every attacked copy was "
        "equivalent to the victim copy.",
    )
    p.add_argument("design")
    p.add_argument(
        "--attacks", default=None, metavar="A,B,...",
        help="comma-separated attack names (default: the full roster; "
        "see repro.attack.ATTACK_NAMES)",
    )
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--vectors", type=int, default=256, metavar="N",
                   help="packed simulation vectors per resub pass "
                   "(multiple of 64; default: 256)")
    p.add_argument("--passes", type=int, default=8, metavar="N",
                   help="max resubstitution passes (default: 8)")
    p.add_argument("--rewrite-fraction", type=float, default=0.4,
                   metavar="F", help="fraction of AND/OR-family gates the "
                   "rewrite attack DeMorgan-dualizes (default: 0.4)")
    p.add_argument("--colluders", type=int, default=3, metavar="N",
                   help="copies the collusion attack compares (default: 3)")
    p.add_argument("--strategy", default="strip",
                   choices=["majority", "random", "strip"],
                   help="collusion forging strategy (default: strip)")
    _add_ladder_options(p)
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser(
        "campaign",
        help="persistent, resumable job campaigns (SQLite-backed)",
        description="Expand a declarative spec (designs x job kind x seeds) "
        "into job rows inside a SQLite result database and execute whatever "
        "is still pending with per-job timeouts, bounded retries, and crash "
        "quarantine.  Interrupt at any time (Ctrl-C, SIGTERM, --max-jobs); "
        "`campaign resume` continues exactly where the DB left off, and "
        "re-running a finished campaign executes nothing.  "
        "`campaign report` aggregates the DB into JSON/HTML fleet reports.",
    )
    p.add_argument("action", choices=("run", "status", "resume", "report"),
                   help="run a spec / show progress / continue the stored "
                   "spec / aggregate results")
    p.add_argument("designs", nargs="*",
                   help="design sources for `run`: .blif/.v paths or "
                   "bench:<name> suite circuits")
    p.add_argument("--db", required=True, metavar="FILE",
                   help="campaign result database (created on first run)")
    p.add_argument("--kind", choices=("fingerprint", "inject", "inject-text"),
                   default="fingerprint",
                   help="job kind expanded from the spec (default: fingerprint)")
    p.add_argument("--copies", type=int, default=8, metavar="N",
                   help="fingerprint kind: copies per design (default: 8)")
    p.add_argument("--trials", type=int, default=1, metavar="N",
                   help="inject kinds: trials per injector (default: 1)")
    p.add_argument("--injectors", default=None, metavar="A,B",
                   help="inject kinds: comma-separated injector names "
                   "(default: all registered)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign base seed (default: 0)")
    p.add_argument("--jobs", type=int, default=1, metavar="J",
                   help="worker processes (default: 1)")
    p.add_argument("--timeout", type=float, default=300.0, metavar="S",
                   help="per-job wall-clock cap, 0 disables (default: 300)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="re-executions after a typed job error (default: 2)")
    p.add_argument("--backoff", type=float, default=0.5, metavar="S",
                   help="base of the exponential retry backoff (default: 0.5)")
    p.add_argument("--overwrite", choices=("none", "failed", "all"),
                   default="none",
                   help="re-open terminal job rows before running "
                   "(default: none = pure resume)")
    p.add_argument("--max-jobs", type=int, default=None, metavar="N",
                   help="execute at most N jobs this run, then stop "
                   "gracefully (checkpointed interrupt)")
    p.add_argument("--measure", action="store_true",
                   help="fingerprint kind: record per-copy overheads")
    p.add_argument("--out", metavar="DIR", default=None,
                   help="report action: write report.json/report.html here")
    _add_ladder_options(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the long-lived fingerprinting HTTP/JSON service",
        description="Start the asyncio HTTP server over the repro.api "
        "facade: JSON submissions feed a multi-tenant queue, results come "
        "back in the unified CLI envelope, progress streams as server-sent "
        "events, and a content-addressed artifact store makes repeated "
        "submissions of identical netlists pure lookups.  Use the shared "
        "--store DIR option for a persistent disk tier and --trace FILE to "
        "write one Chrome trace covering every served job on shutdown.",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port; 0 binds an ephemeral port (default: 8765)")
    p.add_argument("--memory-entries", type=int, default=128, metavar="N",
                   help="artifact-store memory-tier LRU bound (default: 128)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes executing jobs; concurrent "
                   "submissions overlap across them (default: 1)")
    p.add_argument("--quota-max-pending", type=int, default=8, metavar="N",
                   help="per-tenant cap on queued+running jobs; exceeding "
                   "it returns HTTP 429 (default: 8)")
    p.add_argument("--quota-budget-seconds", type=float, default=None,
                   metavar="S",
                   help="per-tenant per-job SAT wall-clock budget forced "
                   "onto every submission (default: unlimited)")
    p.add_argument("--max-requests", type=int, default=None, metavar="N",
                   help="shut down after serving N jobs (smoke/CI use)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("bench", help="emit a suite benchmark circuit")
    p.add_argument("name")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("tables", help="regenerate the paper's tables")
    p.add_argument("budget", nargs="?", default=None,
                   choices=[None, "quick", "medium", "full"])
    p.set_defaults(func=_cmd_tables)

    seen = set()
    for command in sub.choices.values():
        # Aliases map to the same parser object; decorate each one once.
        if id(command) not in seen:
            seen.add(id(command))
            _add_common_options(command)

    return parser


def _envelope(command: str, result: Dict[str, Any], snapshot: Dict[str, Any]) -> str:
    """Serialize the one JSON shape every subcommand emits.

    Delegates to :mod:`repro.envelope` (shared with the HTTP service);
    when an artifact store is active (``--store``), the envelope gains a
    ``cache`` section with its hit/miss counters.
    """
    from .envelope import active_cache_section, render_envelope

    return render_envelope(command, result, snapshot, active_cache_section())


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    json_target: Optional[str] = getattr(args, "json", None)
    trace_path: Optional[str] = getattr(args, "trace", None)

    # Start each invocation from a clean slate so repeated in-process
    # calls (tests, notebooks) never inherit spans from a prior run.
    telemetry.disable()
    telemetry.get_tracer().reset()
    telemetry.get_registry().reset()
    if trace_path:
        telemetry.enable(trace=True, metrics=False)
    if getattr(args, "metrics", False) or json_target is not None:
        telemetry.enable(trace=False, metrics=True)
    store_root = getattr(args, "store", None)
    if store_root is not None:
        from .store import activate_store

        activate_store(root=store_root or None)

    try:
        try:
            code, result = args.func(args)
        except ReproError as exc:
            print(f"error: {exc.diagnostic()}", file=sys.stderr)
            code, result = 3, {"error": exc.diagnostic()}
        spans = telemetry.get_tracer().drain()
        snapshot = telemetry.telemetry_snapshot(spans)
        # A command may take trace-file ownership by clearing args.trace
        # (``serve`` writes its own whole-lifetime trace on shutdown;
        # overwriting it here with the parent's empty span list would
        # destroy it).
        trace_path = getattr(args, "trace", None)
        if trace_path:
            n_events = telemetry.write_chrome_trace(trace_path, spans)
            _say(args, f"wrote {trace_path} ({n_events} events)")
        if json_target is not None:
            text = _envelope(args.command, result, snapshot)
            if json_target == "-":
                print(text)
            else:
                with open(json_target, "w") as handle:
                    handle.write(text + "\n")
                _say(args, f"wrote {json_target}")
        return code
    finally:
        if store_root is not None:
            from .store import deactivate_store

            deactivate_store()
        telemetry.disable()
        telemetry.get_tracer().reset()
        telemetry.get_registry().reset()


if __name__ == "__main__":
    sys.exit(main())
