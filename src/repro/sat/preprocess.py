"""CNF preprocessing for the miter solves (SatELite-style, pure Python).

Implements the three classic clause-database simplifications — run on a
miter CNF *before* it reaches the CDCL solver — with a reconstruction
map so verdicts and (extended) models are unchanged:

* **Bounded variable elimination (BVE)**: resolve a variable's positive
  against its negative occurrences and replace both sides by the
  non-tautological resolvents whenever that does not grow the clause
  count.  Pure literals are the zero-resolvent special case, which is
  what makes BVE act as cone-of-influence pruning on single-output miter
  obligations: gate variables outside the tested output's cone have no
  consumers, become pure bottom-up, and vanish wholesale.
* **Subsumption and self-subsuming resolution (SSR)**: delete clauses
  that are supersets of another clause; strengthen clauses ``D ∨ ¬l``
  to ``D`` when some clause ``C ∨ l`` with ``C ⊆ D`` exists.  Signature
  (bloom) prefiltering keeps the candidate scans cheap.
* **Failed-literal probing**: assume each candidate literal, run unit
  propagation; a conflict proves the negation as a root-level fact.
  Propagation-bounded so it cannot dominate preprocessing time.

Eliminated variables go on a reconstruction stack
(:class:`Reconstruction`) storing their removed clauses; extending a
model of the simplified CNF through the stack (in reverse elimination
order) yields a model of the original CNF.  Variables the caller will
reference later — assumption literals, primary inputs needed for
counterexample extraction, activation literals — must be passed as
``frozen`` so BVE leaves them alone.  Probing/subsumption/SSR are
equivalence-preserving over the original variable set and therefore safe
even for incremental sessions that keep adding clauses; BVE is not, and
is switched off for that use via :data:`INCREMENTAL_SAFE`.

Everything here uses the solver's internal literal encoding only at the
boundary; the public API speaks DIMACS-signed literals like the rest of
:mod:`repro.sat`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import telemetry
from .cnf import Cnf

_TRUE = 1
_FALSE = 0
_UNASSIGNED = -1


def _to_internal(lit: int) -> int:
    var = abs(lit)
    return 2 * var + (1 if lit < 0 else 0)


def _to_external(lit: int) -> int:
    var = lit >> 1
    return -var if lit & 1 else var


@dataclass(frozen=True)
class PreprocessConfig:
    """Feature switches and effort bounds for :func:`preprocess`.

    ``bve_grow`` allows elimination to add that many clauses beyond the
    removed count (0 = classic never-grow).  ``probe_limit`` bounds total
    unit propagations spent probing across the whole call;
    ``subsume_occ_limit`` skips subsumption candidate scans through
    occurrence lists longer than the limit (quadratic-blowup guard).
    """

    bve: bool = True
    subsume: bool = True
    ssr: bool = True
    probe: bool = True
    max_rounds: int = 4
    bve_grow: int = 0
    bve_resolvent_max: int = 24
    probe_limit: int = 400_000
    subsume_occ_limit: int = 400


#: Safe for CNFs that will keep growing after preprocessing (incremental
#: sessions): no variable elimination, only equivalence-preserving
#: simplifications over the original variable set.
INCREMENTAL_SAFE = PreprocessConfig(bve=False)


@dataclass
class PreprocessStats:
    """Work counters from one :func:`preprocess` call."""

    eliminated_vars: int = 0
    subsumed_clauses: int = 0
    strengthened_literals: int = 0
    failed_literals: int = 0
    probes: int = 0
    rounds: int = 0
    units_found: int = 0
    clauses_in: int = 0
    clauses_out: int = 0
    vars_in: int = 0
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


class Reconstruction:
    """Model-extension map from a simplified CNF back to the original.

    Records, in elimination order, each removed variable together with
    all clauses (internal literals) it appeared in.  :meth:`extend`
    replays the stack in reverse: the eliminated variable is set to
    whatever polarity its stored clauses require under the model built so
    far — at most one polarity can be forced, because the resolvent of
    any forcing positive/negative pair survived into the simplified CNF
    and is satisfied by the model.
    """

    def __init__(self) -> None:
        self._stack: List[Tuple[int, List[List[int]]]] = []

    def __len__(self) -> int:
        return len(self._stack)

    def record(self, var: int, clauses: List[List[int]]) -> None:
        self._stack.append((var, [list(c) for c in clauses]))

    def extend(self, model: Dict[int, bool]) -> Dict[int, bool]:
        """Complete ``model`` (a dict over original variable numbers) so it
        satisfies the original CNF; returns the same dict, mutated."""
        for var, clauses in reversed(self._stack):
            value = False
            for clause in clauses:
                satisfied = False
                forced: Optional[bool] = None
                for lit in clause:
                    v = lit >> 1
                    want = not (lit & 1)
                    if v == var:
                        forced = want
                        continue
                    if model.get(v, False) == want:
                        satisfied = True
                        break
                if not satisfied and forced is not None:
                    value = forced
                    break
            model[var] = value
        return model


@dataclass
class PreprocessResult:
    """Outcome of :func:`preprocess`.

    ``status`` is ``False`` when preprocessing alone refuted the formula
    (the simplified CNF then contains the empty-clause marker pair),
    ``True`` when it satisfied it outright (no clauses left), ``None``
    when a solver still has work to do.  ``cnf`` preserves the original
    variable numbering — eliminated variables simply no longer occur —
    so solver models map straight through :meth:`Reconstruction.extend`.
    """

    cnf: Cnf
    status: Optional[bool]
    reconstruction: Reconstruction
    stats: PreprocessStats

    def extend_model(self, model: Optional[Dict[int, bool]]) -> Optional[Dict[int, bool]]:
        if model is None:
            return None
        return self.reconstruction.extend(dict(model))


class _Store:
    """Mutable clause database with occurrence lists and signatures."""

    def __init__(self, n_vars: int, clauses: Iterable[Sequence[int]]) -> None:
        self.n_vars = n_vars
        self.clauses: List[Optional[List[int]]] = []
        self.sigs: List[int] = []
        self.occ: List[List[int]] = [[] for _ in range(2 * (n_vars + 1))]
        self.assign: List[int] = [_UNASSIGNED] * (n_vars + 1)
        self.units: List[int] = []
        self.unsat = False
        self.touched: Set[int] = set()
        for clause in clauses:
            self.add(list(clause))

    @staticmethod
    def _sig(clause: Sequence[int]) -> int:
        s = 0
        for lit in clause:
            s |= 1 << ((lit >> 1) & 63)
        return s

    def add(self, clause: List[int]) -> Optional[int]:
        clause = sorted(set(clause))
        literals = set(clause)
        if any((lit ^ 1) in literals for lit in clause):
            return None  # tautology
        if not clause:
            self.unsat = True
            return None
        if len(clause) == 1:
            self.push_unit(clause[0])
            return None
        index = len(self.clauses)
        self.clauses.append(clause)
        self.sigs.append(self._sig(clause))
        for lit in clause:
            self.occ[lit].append(index)
        self.touched.add(index)
        return index

    def push_unit(self, lit: int) -> None:
        var = lit >> 1
        value = 1 - (lit & 1)
        current = self.assign[var]
        if current != _UNASSIGNED:
            if current != value:
                self.unsat = True
            return
        self.assign[var] = value
        self.units.append(lit)

    def live(self, index: int) -> bool:
        return self.clauses[index] is not None

    def delete(self, index: int) -> None:
        clause = self.clauses[index]
        if clause is None:
            return
        self.clauses[index] = None
        for lit in clause:
            occ = self.occ[lit]
            try:
                occ.remove(index)
            except ValueError:
                pass

    def strengthen(self, index: int, lit: int) -> None:
        """Remove ``lit`` from clause ``index`` (caller guarantees it's there)."""
        clause = self.clauses[index]
        assert clause is not None
        clause.remove(lit)
        try:
            self.occ[lit].remove(index)
        except ValueError:
            pass
        self.sigs[index] = self._sig(clause)
        if len(clause) == 1:
            self.push_unit(clause[0])
            self.delete(index)
        elif not clause:
            self.unsat = True
        else:
            self.touched.add(index)

    def propagate_units(self) -> bool:
        """Apply all pending root-level units to the clause store.

        Returns True when anything changed; sets ``unsat`` on conflict.
        """
        changed = False
        head = 0
        while head < len(self.units) and not self.unsat:
            lit = self.units[head]
            head += 1
            changed = True
            # Clauses satisfied by lit disappear...
            for index in list(self.occ[lit]):
                self.delete(index)
            # ...clauses containing ¬lit lose that literal.
            for index in list(self.occ[lit ^ 1]):
                if self.live(index):
                    self.strengthen(index, lit ^ 1)
        return changed

    def lit_value(self, lit: int) -> int:
        value = self.assign[lit >> 1]
        if value == _UNASSIGNED:
            return -1
        return value ^ (lit & 1)


def _subsumption_round(store: _Store, config: PreprocessConfig, stats: PreprocessStats) -> bool:
    """One pass of (self-)subsumption over the touched clauses."""
    changed = False
    queue = sorted(store.touched)
    store.touched = set()
    for index in queue:
        clause = store.clauses[index]
        if clause is None:
            continue
        sig = store.sigs[index]
        cset = set(clause)
        # Scan through the literal with the fewest occurrences.
        best = min(clause, key=lambda l: len(store.occ[l]))
        if config.subsume and len(store.occ[best]) <= config.subsume_occ_limit:
            for other in list(store.occ[best]):
                if other == index:
                    continue
                cand = store.clauses[other]
                if cand is None or len(cand) < len(clause):
                    continue
                if sig & ~store.sigs[other]:
                    continue
                if cset.issubset(cand):
                    store.delete(other)
                    stats.subsumed_clauses += 1
                    changed = True
        if not config.ssr:
            continue
        # Self-subsuming resolution: clause with one literal flipped
        # subsumes `other` → drop the flipped literal from `other`.
        for lit in clause:
            neg = lit ^ 1
            occ_neg = store.occ[neg]
            if len(occ_neg) > config.subsume_occ_limit:
                continue
            rest = cset - {lit}
            rest_sig = store._sig(list(rest)) | (1 << ((lit >> 1) & 63))
            for other in list(occ_neg):
                cand = store.clauses[other]
                if cand is None or other == index or len(cand) < len(clause):
                    continue
                if rest_sig & ~store.sigs[other]:
                    continue
                if rest.issubset(cand):
                    store.strengthen(other, neg)
                    stats.strengthened_literals += 1
                    changed = True
                    if store.unsat:
                        return True
    return changed


def _probe_round(
    store: _Store,
    budget: List[int],
    stats: PreprocessStats,
) -> bool:
    """Failed-literal probing over binary-clause literals.

    Assumes each candidate literal and unit-propagates by clause
    scanning; a conflict adds the negation as a root fact.  ``budget``
    is a single-element mutable propagation allowance shared across
    rounds.
    """
    changed = False
    candidates: List[int] = []
    seen: Set[int] = set()
    for clause in store.clauses:
        if clause is None or len(clause) != 2:
            continue
        for lit in clause:
            # Probing ¬lit exercises the binary implication chain.
            probe = lit ^ 1
            if probe not in seen:
                seen.add(probe)
                candidates.append(probe)
    assign = store.assign
    for probe in candidates:
        if budget[0] <= 0:
            break
        if assign[probe >> 1] != _UNASSIGNED:
            continue
        stats.probes += 1
        trail = [probe]
        local: Dict[int, int] = {probe >> 1: 1 - (probe & 1)}
        head = 0
        conflict = False
        while head < len(trail) and not conflict:
            lit = trail[head]
            head += 1
            budget[0] -= 1
            if budget[0] <= 0:
                break
            for index in store.occ[lit ^ 1]:
                clause = store.clauses[index]
                if clause is None:
                    continue
                unassigned = 0
                unit = 0
                satisfied = False
                for l in clause:
                    var = l >> 1
                    value = local.get(var, assign[var])
                    if value == _UNASSIGNED:
                        unassigned += 1
                        unit = l
                        if unassigned > 1:
                            break
                    elif value == 1 - (l & 1):
                        satisfied = True
                        break
                if satisfied or unassigned > 1:
                    continue
                if unassigned == 0:
                    conflict = True
                    break
                local[unit >> 1] = 1 - (unit & 1)
                trail.append(unit)
        if conflict:
            store.push_unit(probe ^ 1)
            stats.failed_literals += 1
            store.propagate_units()
            changed = True
            if store.unsat:
                return True
    return changed


def _eliminate_round(
    store: _Store,
    frozen: Set[int],
    config: PreprocessConfig,
    recon: Reconstruction,
    stats: PreprocessStats,
) -> bool:
    """One bounded-variable-elimination sweep over all candidate vars."""
    changed = False
    order = sorted(
        (var for var in range(1, store.n_vars + 1)
         if var not in frozen and store.assign[var] == _UNASSIGNED),
        key=lambda v: len(store.occ[2 * v]) * len(store.occ[2 * v + 1]),
    )
    for var in order:
        if store.unsat:
            return True
        if store.assign[var] != _UNASSIGNED:
            continue
        pos = [i for i in store.occ[2 * var] if store.live(i)]
        neg = [i for i in store.occ[2 * var + 1] if store.live(i)]
        if not pos and not neg:
            continue  # variable no longer occurs; nothing to reconstruct
        before = len(pos) + len(neg)
        limit = before + config.bve_grow
        if len(pos) * len(neg) > max(limit * 4, 16):
            continue  # resolvent work clearly out of budget
        resolvents: List[List[int]] = []
        ok = True
        for pi in pos:
            pc = store.clauses[pi]
            for ni in neg:
                nc = store.clauses[ni]
                merged = set(pc) | set(nc)
                merged.discard(2 * var)
                merged.discard(2 * var + 1)
                if any((lit ^ 1) in merged for lit in merged):
                    continue  # tautological resolvent
                if len(merged) > config.bve_resolvent_max:
                    ok = False
                    break
                resolvents.append(sorted(merged))
                if len(resolvents) > limit:
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue
        removed = [store.clauses[i] for i in pos + neg]
        recon.record(var, [c for c in removed if c is not None])
        for index in pos + neg:
            store.delete(index)
        for resolvent in resolvents:
            store.add(resolvent)
        if store.unsat:
            return True
        store.propagate_units()
        stats.eliminated_vars += 1
        changed = True
    return changed


def preprocess(
    cnf: Cnf,
    frozen: Iterable[int] = (),
    config: Optional[PreprocessConfig] = None,
) -> PreprocessResult:
    """Simplify ``cnf``; returns an equisatisfiable CNF + reconstruction.

    ``frozen`` lists variable numbers that must survive elimination:
    assumption variables, primary inputs needed for counterexamples, and
    any variable the caller will mention in later ``add_clause`` calls.
    The returned CNF keeps the original variable numbering.
    """
    config = config if config is not None else PreprocessConfig()
    frozen_set = {abs(v) for v in frozen}
    stats = PreprocessStats(
        clauses_in=len(cnf.clauses), vars_in=cnf.n_vars
    )
    recon = Reconstruction()
    start = time.perf_counter()
    with telemetry.span("sat.preprocess", vars=cnf.n_vars, clauses=len(cnf.clauses)):
        store = _Store(
            cnf.n_vars,
            ([_to_internal(l) for l in clause] for clause in cnf.clauses),
        )
        store.propagate_units()
        probe_budget = [config.probe_limit]
        while not store.unsat and stats.rounds < config.max_rounds:
            stats.rounds += 1
            changed = False
            if config.probe:
                changed |= _probe_round(store, probe_budget, stats)
            if store.unsat:
                break
            if config.subsume or config.ssr:
                changed |= _subsumption_round(store, config, stats)
            if store.unsat:
                break
            if config.bve:
                changed |= _eliminate_round(store, frozen_set, config, recon, stats)
            if not changed:
                break

        out = Cnf()
        for _ in range(cnf.n_vars):
            out.new_var()
        if store.unsat:
            status: Optional[bool] = False
            out.add_clause([1])
            out.add_clause([-1])
        else:
            for var in range(1, store.n_vars + 1):
                if store.assign[var] == _TRUE:
                    out.add_clause([var])
                elif store.assign[var] == _FALSE:
                    out.add_clause([-var])
            n_live = 0
            for clause in store.clauses:
                if clause is None:
                    continue
                n_live += 1
                out.add_clause([_to_external(l) for l in clause])
            # No clauses left: the root units alone satisfy the formula.
            status = True if n_live == 0 else None
        stats.units_found = len(store.units)
        stats.clauses_out = len(out.clauses)
        stats.seconds = time.perf_counter() - start
        telemetry.count("sat.preprocess.eliminated_vars", stats.eliminated_vars)
        telemetry.count("sat.preprocess.subsumed", stats.subsumed_clauses)
        telemetry.count("sat.preprocess.failed_literals", stats.failed_literals)
        telemetry.count("sat.preprocess.seconds", stats.seconds)
    return PreprocessResult(cnf=out, status=status, reconstruction=recon, stats=stats)


def preprocess_for_solve(
    cnf: Cnf,
    assumptions: Sequence[int] = (),
    frozen: Iterable[int] = (),
    config: Optional[PreprocessConfig] = None,
) -> PreprocessResult:
    """Preprocess with ``assumptions`` baked in as unit clauses.

    The per-obligation entry point: asserting the obligation's literals
    before simplification lets BVE prune everything outside the tested
    cone.  The resulting CNF is specific to these assumptions — solve it
    without re-passing them.
    """
    work = Cnf()
    for _ in range(cnf.n_vars):
        work.new_var()
    for clause in cnf.clauses:
        work.add_clause(list(clause))
    for lit in assumptions:
        work.add_clause([lit])
    merged_frozen = set(frozen) | {abs(l) for l in assumptions}
    return preprocess(work, frozen=merged_frozen, config=config)
