"""Incremental, simulation-guided equivalence checking for fingerprint copies.

The fingerprinting flow issues *many* distinct copies of one base design
(one per user), and every copy must be proven functionally equivalent to
the base.  The scratch checker (:func:`repro.sat.cec.check`) rebuilds the
full miter CNF and runs a fresh solver per copy — wasteful, because each
copy differs from the base only inside the fanout cones of a handful of
ODC modifications.  :class:`IncrementalCecSession` exploits that:

1. **Encode the base once.**  The base circuit is Tseitin-encoded a single
   time (stable variable numbering from the compiled IR's interned order)
   into one persistent :class:`~repro.sat.solver.CdclSolver`.

2. **Encode each copy as a delta.**  Copy gates are walked in topological
   order and structurally hashed over (kind, CNF fanin variables); a gate
   whose key already exists — in the base, or in a previously verified
   copy — reuses that variable and contributes *zero* clauses.  Only gates
   inside the modified cones allocate fresh variables.

3. **Discharge clean outputs structurally.**  An output whose copy
   variable equals its base variable is equivalent by construction; no
   miter, no SAT.  Only outputs reached by a modification need proof.

4. **Simulation-guided pre-filtering.**  Before any SAT call, packed
   random vectors are run through the compiled IR on base and copy.  A
   signature mismatch on any output is an immediate NOT_EQUIVALENT with a
   concrete counterexample vector; matching signatures order the remaining
   SAT obligations hardest-last (by dirty-cone size), so cheap proofs land
   first and a budget interruption wastes the least work.

5. **One persistent solver, assumptions, activation literals.**  Each
   copy's miter clauses are gated behind a fresh activation literal and
   solved under assumptions, so learned clauses accumulate across copies
   and outputs; after the copy's verdict the activation literal is
   permanently negated, retiring its miter clauses without touching the
   shared base encoding.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..budget import Budget, BudgetClock
from ..ir import compile_circuit
from ..netlist.circuit import Circuit
from ..sim.equivalence import PortMismatchError
from ..sim.simulator import Simulator
from ..sim.vectors import WORD_BITS, random_stimulus, vector_of
from ..hashing import gate_key
from .cec import CecResult, CecVerdict
from .preprocess import INCREMENTAL_SAFE, preprocess
from .solver import CdclSolver, SolverConfig
from . import portfolio as portfolio_mod
from .tseitin import _encode, encode_circuit


class _SolverSink:
    """Duck-typed ``Cnf`` facade over a live solver.

    :func:`repro.sat.tseitin._encode` only calls ``add_clause`` and
    ``new_var``, so this adapter lets the gate encoders write clauses
    straight into the persistent solver instead of a throwaway CNF.
    """

    def __init__(self, solver: CdclSolver) -> None:
        self._solver = solver

    def new_var(self) -> int:
        return self._solver.new_var()

    def add_clause(self, literals: Sequence[int]) -> None:
        self._solver.add_clause(literals)


@dataclass
class SessionStats:
    """Aggregate work accounting across all copies verified by a session."""

    copies: int = 0
    outputs_total: int = 0
    outputs_structural: int = 0
    sat_calls: int = 0
    sim_disproofs: int = 0
    sat_disproofs: int = 0
    undecided: int = 0
    gates_encoded: int = 0
    gates_reused: int = 0


class IncrementalCecSession:
    """Verify many copies of one base circuit against a shared encoding.

    Construct once per base design, then call :meth:`verify` per copy.
    The base must not be structurally mutated while the session lives
    (detected via the circuit version and rejected).  Sessions are not
    thread-safe; the batch flow gives each worker process its own.

    Args:
        base: The golden circuit every copy is checked against.
        n_vectors: Packed random vectors for the simulation pre-filter
            (must be a multiple of 64; signatures cost one word-parallel
            sweep per copy).
        seed: Stimulus seed, so sessions are reproducible.
        solver_config: Inner-loop configuration for the persistent solver
            (default: all speed features on).
        simplify_base: Run the incremental-safe preprocessor (probing +
            subsumption + self-subsuming resolution, **no** variable
            elimination — later copy deltas may reference any base
            variable) over the base encoding before loading the solver.
    """

    def __init__(
        self,
        base: Circuit,
        n_vectors: int = 512,
        seed: int = 2015,
        solver_config: Optional[SolverConfig] = None,
        simplify_base: bool = True,
    ) -> None:
        if n_vectors <= 0 or n_vectors % WORD_BITS:
            raise ValueError(f"n_vectors must be a positive multiple of {WORD_BITS}")
        self.base = base
        self._base_version = base.version
        self.stats = SessionStats()

        with telemetry.span(
            "sat.encode_base", design=base.name, gates=base.n_gates
        ):
            encoding = encode_circuit(base)
            self._base_var: Dict[str, int] = dict(encoding.var_of)
            cnf = encoding.cnf
            if simplify_base:
                # Equivalence-preserving only: the variable numbering must
                # survive because every future delta strashes against it.
                cnf = preprocess(cnf, config=INCREMENTAL_SAFE).cnf
            self.solver = CdclSolver(cnf, config=solver_config)
            self._sink = _SolverSink(self.solver)

            # Structural-hash table over CNF variables: (kind, fanin vars)
            # -> output var.  Seeded from the base; grows with every fresh
            # gate a copy introduces, so later copies share earlier
            # copies' deltas too.
            self._strash: Dict[Tuple, int] = {}
            #: Per-base-gate canonical key, for name-stable matching: a
            #: copy gate that keeps its base name and definition maps to
            #: its own base variable even when another base gate shares
            #: the same key (duplicate gates would otherwise alias and
            #: look "modified").
            self._base_key: Dict[str, Tuple] = {}
            compiled = compile_circuit(base)
            for gate in compiled.gates_in_order():
                key = self._key(gate.kind, [self._base_var[n] for n in gate.inputs])
                self._base_key[gate.name] = key
                self._strash.setdefault(key, self._base_var[gate.name])

            self.n_vectors = n_vectors
            self._stimulus = random_stimulus(base.inputs, n_vectors, seed=seed)
            matrix = Simulator(base).run_matrix(self._stimulus)
            self._base_rows: Dict[str, np.ndarray] = {
                net: matrix[compiled.id_of(net)].copy() for net in base.outputs
            }

    # Canonical structural key (commutative fanins sorted), promoted to
    # repro.hashing so the artifact store and campaign ids share it.
    _key = staticmethod(gate_key)

    def _snapshot(
        self,
        verdict: CecVerdict,
        counterexample: Optional[Dict[str, int]],
        reason: Optional[str],
        detail: Dict[str, object],
    ) -> CecResult:
        stats = dataclasses.replace(self.solver.stats)
        return CecResult(verdict, counterexample, stats, reason, detail)

    @staticmethod
    def _remaining(
        budget: Optional[Budget],
        clock: Optional[BudgetClock],
        conflicts_spent: int,
        decisions_spent: int,
    ) -> Optional[Budget]:
        """The unspent remainder of ``budget`` for the next solver call."""
        if budget is None or budget.unlimited or clock is None:
            return None
        deadline = None
        if budget.deadline_s is not None:
            deadline = max(0.0, clock.remaining_seconds() or 0.0)
        max_conflicts = None
        if budget.max_conflicts is not None:
            max_conflicts = max(0, budget.max_conflicts - conflicts_spent)
        max_decisions = None
        if budget.max_decisions is not None:
            max_decisions = max(0, budget.max_decisions - decisions_spent)
        return Budget(deadline, max_conflicts, max_decisions)

    #: Dirty-cone size (nets) above which an obligation counts as "hard"
    #: and is raced across portfolio configurations when racing is on.
    PORTFOLIO_CONE_THRESHOLD = 32

    def verify(
        self,
        copy: Circuit,
        budget: Optional[Budget] = None,
        portfolio: int = 0,
    ) -> CecResult:
        """Check one copy against the base; returns a :class:`CecResult`.

        Semantics match :func:`repro.sat.cec.check` (three-valued verdict,
        counterexample as an input-name-to-bit dict, UNDECIDED under an
        exhausted ``budget``), plus a ``detail`` dict recording how the
        outputs were discharged.  The budget bounds this call as a whole:
        conflicts/decisions spent on earlier outputs count against later
        ones.

        ``portfolio`` ≥ 2 races that many solver configurations (in OS
        processes, first verdict wins) on each *hard* obligation — one
        whose dirty cone reaches :data:`PORTFOLIO_CONE_THRESHOLD` nets —
        seeded with the session's full clause database, learned clauses
        included.  Racer work is merged into the session's solver stats
        exactly once; verdicts are unaffected (every configuration is
        sound and complete).
        """
        with telemetry.span(
            "cec.verify", design=copy.name, outputs=len(copy.outputs)
        ) as verify_span:
            result = self._verify(copy, budget, portfolio)
            verify_span.set(
                verdict=result.verdict.value,
                outputs_sat=result.detail.get("outputs_sat"),
                gates_encoded=result.detail.get("gates_encoded"),
                gates_reused=result.detail.get("gates_reused"),
            )
            telemetry.count("cec.copies")
            telemetry.count(f"cec.verdict.{result.verdict.value}")
            return result

    def _verify(
        self,
        copy: Circuit,
        budget: Optional[Budget],
        portfolio: int = 0,
    ) -> CecResult:
        if self.base.version != self._base_version:
            raise ValueError("base circuit was mutated after session construction")
        if set(copy.inputs) != set(self.base.inputs):
            raise PortMismatchError("input sets differ")
        if set(copy.outputs) != set(self.base.outputs):
            raise PortMismatchError("output sets differ")
        solver = self.solver
        clock = budget.start() if budget is not None and not budget.unlimited else None
        conflicts0 = solver.stats.conflicts
        decisions0 = solver.stats.decisions
        self.stats.copies += 1
        self.stats.outputs_total += len(copy.outputs)
        base_var = self._base_var

        # --- delta encoding: share everything the strash table knows ----- #
        compiled = compile_circuit(copy)
        var_of: Dict[str, int] = {name: base_var[name] for name in copy.inputs}
        encoded = reused = 0
        for gate in compiled.gates_in_order():
            ins = [var_of[n] for n in gate.inputs]
            key = self._key(gate.kind, ins)
            if self._base_key.get(gate.name) == key:
                var = base_var[gate.name]  # unchanged gate, name-stable
            else:
                var = self._strash.get(key)
            if var is None:
                var = solver.new_var()
                _encode(self._sink, gate.kind, var, ins)
                self._strash[key] = var
                encoded += 1
            else:
                reused += 1
            var_of[gate.name] = var
        self.stats.gates_encoded += encoded
        self.stats.gates_reused += reused

        affected = [net for net in copy.outputs if var_of[net] != base_var[net]]
        detail: Dict[str, object] = {
            "engine": "incremental",
            "outputs": len(copy.outputs),
            "outputs_structural": len(copy.outputs) - len(affected),
            "outputs_sat": 0,
            "gates_encoded": encoded,
            "gates_reused": reused,
        }
        self.stats.outputs_structural += len(copy.outputs) - len(affected)
        if not affected:
            return self._snapshot(
                CecVerdict.EQUIVALENT,
                None,
                "all outputs discharged structurally",
                detail,
            )

        # --- simulation pre-filter --------------------------------------- #
        copy_matrix = Simulator(copy).run_matrix(self._stimulus)
        for net in affected:
            diff = self._base_rows[net] ^ copy_matrix[compiled.id_of(net)]
            nonzero = np.nonzero(diff)[0]
            if len(nonzero):
                word = int(nonzero[0])
                bits = int(diff[word])
                index = word * WORD_BITS + ((bits & -bits).bit_length() - 1)
                self.stats.sim_disproofs += 1
                return self._snapshot(
                    CecVerdict.NOT_EQUIVALENT,
                    vector_of(self._stimulus, index),
                    f"simulation signature mismatch on output {net!r}",
                    detail,
                )

        # --- SAT obligations, hardest last ------------------------------- #
        def dirty_cone_size(out_name: str) -> int:
            """Nets in the output's cone carrying a non-base variable.

            Clean nets (variable shared with the base net of the same
            name) prune the walk — a shared variable implies the whole
            cone below it is shared.
            """
            count = 0
            seen = set()
            stack = [out_name]
            while stack:
                name = stack.pop()
                if name in seen:
                    continue
                seen.add(name)
                if var_of[name] == base_var.get(name):
                    continue
                count += 1
                gate = copy.driver(name)
                if gate is not None:
                    stack.extend(gate.inputs)
            return count

        cone_size = {net: dirty_cone_size(net) for net in affected}
        order = sorted(affected, key=cone_size.__getitem__)
        activation = solver.new_var()
        try:
            for position, net in enumerate(order):
                spent_c = solver.stats.conflicts - conflicts0
                spent_d = solver.stats.decisions - decisions0
                if clock is not None:
                    reason = clock.exhausted_reason(spent_c, spent_d)
                    if reason is not None:
                        self.stats.undecided += 1
                        detail["undecided_output"] = net
                        return self._snapshot(
                            CecVerdict.UNDECIDED, None, reason, detail
                        )
                left, right = base_var[net], var_of[net]
                diff_var = solver.new_var()
                for clause in (
                    [-diff_var, left, right],
                    [-diff_var, -left, -right],
                    [diff_var, -left, right],
                    [diff_var, left, -right],
                ):
                    clause.append(-activation)
                    solver.add_clause(clause)
                remaining = self._remaining(budget, clock, spent_c, spent_d)
                if (
                    portfolio >= 2
                    and cone_size[net] >= self.PORTFOLIO_CONE_THRESHOLD
                ):
                    outcome = portfolio_mod.race(
                        solver.n_vars,
                        solver.export_clauses(),
                        assumptions=[activation, diff_var],
                        configs=portfolio_mod.configs_for(portfolio),
                        budget=remaining,
                    )
                    # Fold all racers' counters into the session's stats
                    # exactly once (rates recompute from raw counters).
                    solver.stats.merge(outcome.stats)
                    detail["portfolio_races"] = (
                        int(detail.get("portfolio_races", 0)) + 1
                    )
                    unknown, satisfiable = outcome.unknown, outcome.satisfiable
                    reason = outcome.reason
                    model = outcome.model
                else:
                    result = solver.solve(
                        assumptions=[activation, diff_var], budget=remaining
                    )
                    unknown, satisfiable = result.unknown, result.satisfiable
                    reason = result.reason
                    model = result.model
                self.stats.sat_calls += 1
                detail["outputs_sat"] = position + 1
                if unknown:
                    self.stats.undecided += 1
                    detail["undecided_output"] = net
                    return self._snapshot(
                        CecVerdict.UNDECIDED, None, reason, detail
                    )
                if satisfiable:
                    counterexample = {
                        name: int(model.get(base_var[name], False))
                        for name in self.base.inputs
                    }
                    self.stats.sat_disproofs += 1
                    return self._snapshot(
                        CecVerdict.NOT_EQUIVALENT,
                        counterexample,
                        f"SAT counterexample on output {net!r}",
                        detail,
                    )
            return self._snapshot(
                CecVerdict.EQUIVALENT,
                None,
                f"{len(order)} miter obligations proven UNSAT",
                detail,
            )
        finally:
            # Retire this copy's miter clauses for good; the learned
            # clauses they produced remain valid for future copies.
            solver.add_clause([-activation])

    def verify_many(
        self,
        copies: Sequence[Circuit],
        budget: Optional[Budget] = None,
        portfolio: int = 0,
    ) -> List[CecResult]:
        """Verify copies in order (each bounded by its own ``budget``)."""
        return [
            self.verify(copy, budget=budget, portfolio=portfolio)
            for copy in copies
        ]
