"""CNF formula container with DIMACS import/export.

Literals follow the DIMACS convention: variables are positive integers,
a negative integer denotes negation.  The container validates clauses,
tracks the variable count and supports fresh-variable allocation for the
Tseitin encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple
from ..errors import ReproError


class CnfError(ReproError, ValueError):
    """Malformed clause or DIMACS text."""


@dataclass
class Cnf:
    """A conjunction of clauses over integer variables."""

    n_vars: int = 0
    clauses: List[Tuple[int, ...]] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.n_vars += 1
        return self.n_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause; literals must reference allocated variables."""
        clause = tuple(literals)
        if not clause:
            raise CnfError("empty clause added explicitly; formula is UNSAT")
        for lit in clause:
            if lit == 0:
                raise CnfError("literal 0 is not allowed")
            if abs(lit) > self.n_vars:
                raise CnfError(f"literal {lit} references unallocated variable")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate under ``assignment`` (index 1..n_vars; index 0 unused)."""
        if len(assignment) < self.n_vars + 1:
            raise CnfError("assignment too short")
        for clause in self.clauses:
            if not any(
                assignment[lit] if lit > 0 else not assignment[-lit]
                for lit in clause
            ):
                return False
        return True

    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format."""
        lines = [f"p cnf {self.n_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_dimacs(text: str) -> "Cnf":
        """Parse DIMACS CNF text."""
        cnf: Optional[Cnf] = None
        pending: List[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise CnfError(f"bad problem line {line!r}")
                cnf = Cnf(n_vars=int(parts[2]))
                continue
            if cnf is None:
                raise CnfError("clause before problem line")
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if cnf is None:
            raise CnfError("missing problem line")
        if pending:
            cnf.add_clause(pending)
        return cnf
