"""CNF, a CDCL SAT solver, Tseitin encoding and SAT-based equivalence."""

from .cnf import Cnf, CnfError
from .solver import CdclSolver, SatResult, SolverStats, solve_cnf
from .tseitin import CircuitEncoding, encode_circuit, encode_gate
from .cec import CecResult, build_miter, sat_equivalent

__all__ = [
    "Cnf",
    "CnfError",
    "CdclSolver",
    "SatResult",
    "SolverStats",
    "solve_cnf",
    "CircuitEncoding",
    "encode_circuit",
    "encode_gate",
    "CecResult",
    "build_miter",
    "sat_equivalent",
]
