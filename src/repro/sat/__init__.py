"""CNF, a CDCL SAT solver, Tseitin encoding and SAT-based equivalence."""

from .cnf import Cnf, CnfError
from .solver import CdclSolver, SatResult, SatStatus, SolverStats, solve_cnf
from .tseitin import CircuitEncoding, encode_circuit, encode_gate
from .cec import (
    CecResult,
    CecVerdict,
    build_miter,
    check,
    sat_equivalent,
    structurally_identical,
)
from .incremental import IncrementalCecSession, SessionStats

__all__ = [
    "Cnf",
    "CnfError",
    "CdclSolver",
    "SatResult",
    "SatStatus",
    "SolverStats",
    "solve_cnf",
    "CircuitEncoding",
    "encode_circuit",
    "encode_gate",
    "CecResult",
    "CecVerdict",
    "build_miter",
    "check",
    "sat_equivalent",
    "structurally_identical",
    "IncrementalCecSession",
    "SessionStats",
]
