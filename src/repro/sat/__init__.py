"""CNF, a CDCL SAT solver, preprocessing, Tseitin encoding and SAT CEC."""

from .cnf import Cnf, CnfError
from .solver import (
    LEGACY_CONFIG,
    CdclSolver,
    SatResult,
    SatStatus,
    SolverConfig,
    SolverStats,
    solve_cnf,
)
from .preprocess import (
    INCREMENTAL_SAFE,
    PreprocessConfig,
    PreprocessResult,
    PreprocessStats,
    Reconstruction,
    preprocess,
    preprocess_for_solve,
)
from .portfolio import PORTFOLIO_CONFIGS, RaceOutcome, configs_for, race
from .tseitin import CircuitEncoding, encode_circuit, encode_gate
from .cec import (
    CecResult,
    CecVerdict,
    build_miter,
    check,
    sat_equivalent,
    structurally_identical,
)
from .incremental import IncrementalCecSession, SessionStats

__all__ = [
    "Cnf",
    "CnfError",
    "CdclSolver",
    "SatResult",
    "SatStatus",
    "SolverConfig",
    "SolverStats",
    "LEGACY_CONFIG",
    "solve_cnf",
    "PreprocessConfig",
    "PreprocessResult",
    "PreprocessStats",
    "Reconstruction",
    "INCREMENTAL_SAFE",
    "preprocess",
    "preprocess_for_solve",
    "PORTFOLIO_CONFIGS",
    "RaceOutcome",
    "configs_for",
    "race",
    "CircuitEncoding",
    "encode_circuit",
    "encode_gate",
    "CecResult",
    "CecVerdict",
    "build_miter",
    "check",
    "sat_equivalent",
    "structurally_identical",
    "IncrementalCecSession",
    "SessionStats",
]
