"""Miter-based combinational equivalence checking (CEC).

Builds the classic miter: both circuits share primary-input variables,
each pair of same-named outputs feeds an XOR, and the OR of all XORs is
asserted true.  UNSAT proves equivalence; a model is a counterexample
vector.  This is the complete check used when circuits are too wide for
exhaustive simulation, mirroring the role of an industrial CEC step that
the paper's "without changing the functionality" claim rests on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..budget import Budget

# Canonical commutativity set now lives with the other content-hashing
# conventions; re-exported here for the pre-refactor import path.
from ..hashing import COMMUTATIVE_KINDS  # noqa: F401 - re-export
from ..ir import compile_circuit
from ..netlist.circuit import Circuit
from ..sim.equivalence import PortMismatchError
from .preprocess import PreprocessConfig, preprocess
from .solver import CdclSolver, SolverConfig, SolverStats
from .tseitin import CircuitEncoding, _encode_xor2, encode_circuit


class CecVerdict(enum.Enum):
    """Three-valued CEC outcome."""

    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    UNDECIDED = "undecided"  # budget spent before the miter was resolved


@dataclass(frozen=True)
class CecResult:
    """Verdict of a SAT-based equivalence check.

    ``verdict`` is definitive for EQUIVALENT / NOT_EQUIVALENT; UNDECIDED
    means the solve budget ran out first (``reason`` names the spent limit)
    and the caller should fall back to another verification tier.
    """

    verdict: CecVerdict
    counterexample: Optional[Dict[str, int]]
    stats: SolverStats
    reason: Optional[str] = None
    #: Optional engine-specific breakdown (the incremental session reports
    #: how many outputs were discharged structurally, by simulation, or by
    #: SAT, and how much of the copy's encoding was shared with the base).
    detail: Optional[Dict[str, object]] = None

    @property
    def equivalent(self) -> bool:
        """True only for a *proven* equivalence."""
        return self.verdict is CecVerdict.EQUIVALENT

    @property
    def decided(self) -> bool:
        """True when the check reached a definitive verdict."""
        return self.verdict is not CecVerdict.UNDECIDED


def structurally_identical(left: Circuit, right: Circuit) -> bool:
    """Canonical structural hashing over both circuits at once.

    Interns every net of both circuits into one congruence table keyed by
    ``(kind, fanin classes)`` — fanins sorted for commutative kinds, primary
    inputs keyed by name — and compares the output classes.  A ``True``
    verdict is a *proof* of equivalence (same outputs computed by literally
    the same gate structure); ``False`` just means a miter is needed.  Used
    as the no-SAT fast path for copies with zero surviving modifications.
    """
    if set(left.inputs) != set(right.inputs):
        return False
    if set(left.outputs) != set(right.outputs):
        return False
    table: Dict[tuple, int] = {}

    def output_classes(circuit: Circuit) -> Dict[str, int]:
        compiled = compile_circuit(circuit)
        cls: Dict[str, int] = {}
        for name in circuit.inputs:
            key = ("pi", name)
            cls[name] = table.setdefault(key, len(table))
        for gate in compiled.gates_in_order():
            ins = tuple(cls[n] for n in gate.inputs)
            if gate.kind in COMMUTATIVE_KINDS:
                ins = tuple(sorted(ins))
            key = (gate.kind, ins)
            cls[gate.name] = table.setdefault(key, len(table))
        return {net: cls[net] for net in circuit.outputs}

    return output_classes(left) == output_classes(right)


def build_miter(left: Circuit, right: Circuit) -> CircuitEncoding:
    """Encode the miter of two port-compatible circuits.

    The returned encoding has an extra final variable (the last allocated
    one) asserted true iff some output pair differs.
    """
    if set(left.inputs) != set(right.inputs):
        raise PortMismatchError("input sets differ")
    if set(left.outputs) != set(right.outputs):
        raise PortMismatchError("output sets differ")
    encoding = CircuitEncoding()
    shared = left.inputs
    encode_circuit(left, encoding, prefix="L::", shared_nets=shared)
    encode_circuit(right, encoding, prefix="R::", shared_nets=shared)
    cnf = encoding.cnf
    difference_lits = []
    for net in left.outputs:
        left_var = encoding.variable(net if net in shared else "L::" + net)
        right_var = encoding.variable(net if net in shared else "R::" + net)
        if left_var == right_var:
            continue  # feed-through output shared by both circuits
        diff = cnf.new_var()
        _encode_xor2(cnf, diff, left_var, right_var)
        difference_lits.append(diff)
    if difference_lits:
        cnf.add_clause(difference_lits)
    else:
        # No comparable outputs differ structurally: force UNSAT by adding
        # a contradictory pair on a fresh variable.
        fresh = cnf.new_var()
        cnf.add_clause([fresh])
        cnf.add_clause([-fresh])
    return encoding


def check(
    left: Circuit,
    right: Circuit,
    budget: Optional[Budget] = None,
    *,
    simplify: bool = True,
    solver_config: Optional[SolverConfig] = None,
    preprocess_config: Optional[PreprocessConfig] = None,
) -> CecResult:
    """Budgeted equivalence check via the miter; SAT model = mismatch.

    With a ``budget``, a hard miter yields :data:`CecVerdict.UNDECIDED`
    instead of running unbounded — the caller decides what that means
    (the verification ladder falls back to random simulation).

    Structurally identical pairs (see :func:`structurally_identical`) are
    discharged without building a miter or touching the solver at all —
    the common case for fingerprint requests whose modifications were all
    pruned away.

    ``simplify`` runs the SatELite-style preprocessor
    (:mod:`repro.sat.preprocess`) on the miter before solving — primary
    inputs are frozen so counterexamples read straight off the extended
    model; the differential suite pins verdicts identical either way.
    ``solver_config`` picks the CDCL inner-loop configuration (default:
    all speed features on).
    """
    if structurally_identical(left, right):
        return CecResult(
            CecVerdict.EQUIVALENT,
            None,
            SolverStats(),
            reason="structurally identical under canonical hashing",
        )
    encoding = build_miter(left, right)
    pre = None
    cnf = encoding.cnf
    if simplify:
        frozen = [encoding.var_of[net] for net in left.inputs]
        pre = preprocess(cnf, frozen=frozen, config=preprocess_config)
        if pre.status is False:
            return CecResult(
                CecVerdict.EQUIVALENT,
                None,
                SolverStats(),
                reason="refuted during preprocessing",
            )
        cnf = pre.cnf
    solver = CdclSolver(cnf, config=solver_config)
    result = solver.solve(budget=budget)
    if result.unknown:
        return CecResult(CecVerdict.UNDECIDED, None, result.stats, result.reason)
    if not result.satisfiable:
        return CecResult(CecVerdict.EQUIVALENT, None, result.stats)
    model = result.model if pre is None else pre.extend_model(result.model)
    counterexample = {
        net: int(model.get(encoding.var_of[net], False)) for net in left.inputs
    }
    return CecResult(CecVerdict.NOT_EQUIVALENT, counterexample, result.stats)


def sat_equivalent(left: Circuit, right: Circuit) -> CecResult:
    """Complete (unbudgeted) equivalence check; always definitive."""
    return check(left, right, budget=None)
