"""Miter-based combinational equivalence checking (CEC).

Builds the classic miter: both circuits share primary-input variables,
each pair of same-named outputs feeds an XOR, and the OR of all XORs is
asserted true.  UNSAT proves equivalence; a model is a counterexample
vector.  This is the complete check used when circuits are too wide for
exhaustive simulation, mirroring the role of an industrial CEC step that
the paper's "without changing the functionality" claim rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..netlist.circuit import Circuit
from ..sim.equivalence import PortMismatchError
from .solver import CdclSolver, SolverStats
from .tseitin import CircuitEncoding, _encode_xor2, encode_circuit


@dataclass(frozen=True)
class CecResult:
    """Verdict of a SAT-based equivalence check (always definitive)."""

    equivalent: bool
    counterexample: Optional[Dict[str, int]]
    stats: SolverStats


def build_miter(left: Circuit, right: Circuit) -> CircuitEncoding:
    """Encode the miter of two port-compatible circuits.

    The returned encoding has an extra final variable (the last allocated
    one) asserted true iff some output pair differs.
    """
    if set(left.inputs) != set(right.inputs):
        raise PortMismatchError("input sets differ")
    if set(left.outputs) != set(right.outputs):
        raise PortMismatchError("output sets differ")
    encoding = CircuitEncoding()
    shared = left.inputs
    encode_circuit(left, encoding, prefix="L::", shared_nets=shared)
    encode_circuit(right, encoding, prefix="R::", shared_nets=shared)
    cnf = encoding.cnf
    difference_lits = []
    for net in left.outputs:
        left_var = encoding.variable(net if net in shared else "L::" + net)
        right_var = encoding.variable(net if net in shared else "R::" + net)
        if left_var == right_var:
            continue  # feed-through output shared by both circuits
        diff = cnf.new_var()
        _encode_xor2(cnf, diff, left_var, right_var)
        difference_lits.append(diff)
    if difference_lits:
        cnf.add_clause(difference_lits)
    else:
        # No comparable outputs differ structurally: force UNSAT by adding
        # a contradictory pair on a fresh variable.
        fresh = cnf.new_var()
        cnf.add_clause([fresh])
        cnf.add_clause([-fresh])
    return encoding


def sat_equivalent(left: Circuit, right: Circuit) -> CecResult:
    """Complete equivalence check via the miter; SAT model = mismatch."""
    encoding = build_miter(left, right)
    solver = CdclSolver(encoding.cnf)
    result = solver.solve()
    if not result.satisfiable:
        return CecResult(True, None, result.stats)
    counterexample = {
        net: int(result.value(encoding.var_of[net])) for net in left.inputs
    }
    return CecResult(False, counterexample, result.stats)
