"""Tseitin transformation: gate-level circuits to CNF.

Each net gets a CNF variable; each gate contributes the standard clause set
constraining its output variable to equal its function.  The encoder keeps
the net-to-variable map so the equivalence checker can translate SAT models
back into circuit counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir import compile_circuit
from ..netlist.circuit import Circuit, Gate
from .cnf import Cnf


@dataclass
class CircuitEncoding:
    """CNF plus the net-to-variable correspondence for one or two circuits."""

    cnf: Cnf = field(default_factory=Cnf)
    var_of: Dict[str, int] = field(default_factory=dict)

    def variable(self, net: str) -> int:
        """Variable for ``net``, allocating it on first use."""
        var = self.var_of.get(net)
        if var is None:
            var = self.cnf.new_var()
            self.var_of[net] = var
        return var


def _encode_and(cnf: Cnf, out: int, ins: Sequence[int], invert: bool) -> None:
    out_lit = -out if invert else out
    for lit in ins:
        cnf.add_clause([-out_lit, lit])
    cnf.add_clause([out_lit] + [-lit for lit in ins])


def _encode_or(cnf: Cnf, out: int, ins: Sequence[int], invert: bool) -> None:
    out_lit = -out if invert else out
    for lit in ins:
        cnf.add_clause([out_lit, -lit])
    cnf.add_clause([-out_lit] + list(ins))


def _encode_xor2(cnf: Cnf, out: int, a: int, b: int) -> None:
    cnf.add_clause([-out, a, b])
    cnf.add_clause([-out, -a, -b])
    cnf.add_clause([out, -a, b])
    cnf.add_clause([out, a, -b])


def _encode_equal(cnf: Cnf, a: int, b: int) -> None:
    cnf.add_clause([-a, b])
    cnf.add_clause([a, -b])


def _encode(cnf: Cnf, kind: str, out: int, ins: List[int]) -> None:
    if kind == "CONST0":
        cnf.add_clause([-out])
    elif kind == "CONST1":
        cnf.add_clause([out])
    elif kind == "BUF":
        _encode_equal(cnf, out, ins[0])
    elif kind == "INV":
        cnf.add_clause([-out, -ins[0]])
        cnf.add_clause([out, ins[0]])
    elif kind in ("AND", "NAND"):
        _encode_and(cnf, out, ins, invert=(kind == "NAND"))
    elif kind in ("OR", "NOR"):
        _encode_or(cnf, out, ins, invert=(kind == "NOR"))
    elif kind in ("XOR", "XNOR"):
        acc = ins[0]
        for lit in ins[1:-1]:
            fresh = cnf.new_var()
            _encode_xor2(cnf, fresh, acc, lit)
            acc = fresh
        if kind == "XOR":
            _encode_xor2(cnf, out, acc, ins[-1])
        else:
            fresh = cnf.new_var()
            _encode_xor2(cnf, fresh, acc, ins[-1])
            cnf.add_clause([-out, -fresh])
            cnf.add_clause([out, fresh])
    else:
        raise ValueError(f"cannot encode gate kind {kind!r}")


def encode_gate(encoding: CircuitEncoding, gate: Gate, prefix: str = "") -> None:
    """Append clauses constraining one gate's (optionally prefixed) output."""
    out = encoding.variable(prefix + gate.name)
    ins = [encoding.variable(prefix + n) for n in gate.inputs]
    _encode(encoding.cnf, gate.kind, out, ins)


def encode_circuit(
    circuit: Circuit,
    encoding: Optional[CircuitEncoding] = None,
    prefix: str = "",
    shared_nets: Sequence[str] = (),
) -> CircuitEncoding:
    """Encode a whole circuit into CNF.

    ``shared_nets`` (typically primary inputs) are looked up without the
    prefix, so two circuits encoded into the same :class:`CircuitEncoding`
    with different prefixes share those variables — the construction behind
    the equivalence-checking miter.

    Variable numbering is *stable*: every net is pre-interned in the
    compiled IR's ID order (primary inputs first, then gate outputs
    topologically), so the same circuit always yields the same
    net-to-variable map regardless of gate-encoding order, and two
    encodings of structurally identical circuits are variable-for-variable
    comparable.

    The *bare* form (no caller-supplied encoding, prefix, or shared
    nets) is content-addressed when an artifact store is active: a
    structurally identical resubmission returns the cached
    :class:`CircuitEncoding`.  Bare-form results are shared read-only by
    convention — every existing consumer copies ``var_of`` and feeds
    ``cnf`` to a solver that copies the clauses; callers that want to
    extend an encoding in place must pass their own ``encoding``.
    """
    if encoding is None and not prefix and not shared_nets:
        from ..store.core import active_store

        store = active_store()
        if store is not None:
            from ..hashing import circuit_digest

            return store.get_or_compute(
                "cnf",
                circuit_digest(circuit),
                lambda: _encode_whole(circuit, CircuitEncoding(), "", set()),
            )
    if encoding is None:
        encoding = CircuitEncoding()
    return _encode_whole(circuit, encoding, prefix, set(shared_nets))


def _encode_whole(
    circuit: Circuit,
    encoding: CircuitEncoding,
    prefix: str,
    shared: set,
) -> CircuitEncoding:
    compiled = compile_circuit(circuit)

    def net_var(net: str) -> int:
        return encoding.variable(net if net in shared else prefix + net)

    for net in compiled.names:
        net_var(net)
    for gate in compiled.gates_in_order():
        out = net_var(gate.name)
        ins = [net_var(n) for n in gate.inputs]
        _encode(encoding.cnf, gate.kind, out, ins)
    return encoding
