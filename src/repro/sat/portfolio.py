"""Portfolio SAT racing: N solver configurations, first verdict wins.

Hard miter obligations occasionally resist one heuristic configuration
while falling quickly to another (restart cadence and branching polarity
interact badly with XOR-heavy cones).  :func:`race` runs the same
obligation under several :class:`~repro.sat.solver.SolverConfig` variants
in parallel OS processes; the first definitive verdict (SAT/UNSAT) stops
the rest through the solver's cooperative ``interrupt`` hook.  Because
every configuration is sound and complete, whichever finishes first
returns *the* verdict — racing can only change latency, never the answer.

Losers' partial work is still accounted: each worker ships its
:class:`~repro.sat.solver.SolverStats` back over the result queue and the
caller receives them merged via :meth:`SolverStats.merge` (raw counters
summed exactly once — derived rates recompute from the merged counters,
so aggregation cannot double-count).

Workers are plain ``multiprocessing`` processes (fork server where
available) fed the exported clause list — learned clauses included, so a
mid-session race starts from everything the persistent solver already
proved.  A ``portfolio`` of 0 or 1, or an unavailable ``multiprocessing``
start method, degrades to solving inline with the first configuration.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..budget import Budget
from .cnf import Cnf
from .solver import CdclSolver, SatStatus, SolverConfig, SolverStats

#: Default racing lineup, most-general first.  Diversity comes from the
#: restart cadence (short restarts escape bad prefixes, long ones let deep
#: conflict chains finish), branching polarity, and activity half-life.
PORTFOLIO_CONFIGS: Tuple[SolverConfig, ...] = (
    SolverConfig(),
    SolverConfig(restart_base=30, var_decay=0.90),
    SolverConfig(restart_base=400, phase_saving=False),
    SolverConfig(restart_base=100, var_decay=0.99, cla_decay=0.995),
)


@dataclass
class RaceOutcome:
    """Result of one portfolio race.

    ``status``/``model``/``reason`` mirror a ``SatResult``; ``winner`` is
    the :meth:`SolverConfig.key` of the configuration that produced the
    verdict (``None`` when every racer exhausted the budget).  ``stats``
    merges all workers' counters exactly once.
    """

    status: SatStatus
    model: Optional[Dict[int, bool]]
    reason: Optional[str]
    winner: Optional[str]
    stats: SolverStats
    n_workers: int

    @property
    def satisfiable(self) -> bool:
        return self.status is SatStatus.SAT

    @property
    def unknown(self) -> bool:
        return self.status is SatStatus.UNKNOWN


def _race_worker(
    index: int,
    n_vars: int,
    clauses: List[List[int]],
    assumptions: Sequence[int],
    config: SolverConfig,
    budget: Optional[Budget],
    stop,  # mp.Event
    results,  # mp.Queue
) -> None:
    cnf = Cnf()
    for _ in range(n_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(list(clause))
    solver = CdclSolver(cnf, config=config)
    result = solver.solve(
        assumptions, budget=budget, interrupt=stop.is_set
    )
    if result.status is not SatStatus.UNKNOWN:
        stop.set()
    results.put(
        (
            index,
            result.status.value,
            result.model,
            result.reason,
            result.stats.as_dict(),
        )
    )


def _stats_from_dict(payload: Dict[str, float]) -> SolverStats:
    stats = SolverStats()
    for name in SolverStats._SUM_FIELDS:
        setattr(stats, name, payload.get(name, 0))
    stats.max_decision_level = int(payload.get("max_decision_level", 0))
    return stats


def _solve_inline(
    n_vars: int,
    clauses: List[List[int]],
    assumptions: Sequence[int],
    config: SolverConfig,
    budget: Optional[Budget],
) -> RaceOutcome:
    cnf = Cnf()
    for _ in range(n_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(list(clause))
    result = CdclSolver(cnf, config=config).solve(assumptions, budget=budget)
    winner = config.key() if result.status is not SatStatus.UNKNOWN else None
    return RaceOutcome(
        result.status, result.model, result.reason, winner, result.stats, 1
    )


def race(
    n_vars: int,
    clauses: List[List[int]],
    assumptions: Sequence[int] = (),
    configs: Sequence[SolverConfig] = PORTFOLIO_CONFIGS,
    budget: Optional[Budget] = None,
    join_timeout: float = 10.0,
) -> RaceOutcome:
    """Race ``configs`` on one obligation; first definitive verdict wins.

    ``clauses`` are DIMACS-signed over ``n_vars`` variables (use
    :meth:`CdclSolver.export_clauses` to seed from a live solver);
    ``budget`` bounds each racer independently.  Returns UNKNOWN only
    when *every* racer exhausted its budget.
    """
    configs = list(configs)
    if len(configs) < 2:
        config = configs[0] if configs else SolverConfig()
        return _solve_inline(n_vars, clauses, assumptions, config, budget)
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = mp.get_context()
    stop = ctx.Event()
    results: "mp.Queue" = ctx.Queue()
    workers = []
    with telemetry.span("sat.portfolio", configs=len(configs), vars=n_vars):
        try:
            for index, config in enumerate(configs):
                worker = ctx.Process(
                    target=_race_worker,
                    args=(
                        index,
                        n_vars,
                        clauses,
                        list(assumptions),
                        config,
                        budget,
                        stop,
                        results,
                    ),
                    daemon=True,
                )
                worker.start()
                workers.append(worker)
        except OSError:  # pragma: no cover - fork failure (rlimits)
            stop.set()
            for worker in workers:
                worker.terminate()
            config = configs[0]
            return _solve_inline(n_vars, clauses, assumptions, config, budget)

        merged = SolverStats()
        reports: List[Tuple[int, str, Optional[Dict[int, bool]], Optional[str]]] = []
        best: Optional[Tuple[int, str, Optional[Dict[int, bool]], Optional[str]]] = None
        pending = len(workers)
        while pending:
            try:
                index, status, model, reason, stats_dict = results.get(
                    timeout=join_timeout if stop.is_set() else 1.0
                )
            except queue_mod.Empty:
                if stop.is_set():
                    break  # a stopped worker died before reporting
                if not any(w.is_alive() for w in workers):
                    break  # every racer exited without a report (crash)
                continue
            pending -= 1
            merged.merge(_stats_from_dict(stats_dict))
            reports.append((index, status, model, reason))
            if status != SatStatus.UNKNOWN.value and best is None:
                best = (index, status, model, reason)
                stop.set()
        stop.set()
        for worker in workers:
            worker.join(timeout=join_timeout)
            if worker.is_alive():  # pragma: no cover - interrupt ignored
                worker.terminate()
                worker.join(timeout=1.0)
        results.close()

        telemetry.count("sat.portfolio.races")
        if best is not None:
            index, status, model, reason = best
            telemetry.count("sat.portfolio.decided")
            return RaceOutcome(
                SatStatus(status),
                model,
                reason,
                configs[index].key(),
                merged,
                len(workers),
            )
        # All racers exhausted their budgets (or died): report the first
        # UNKNOWN reason we saw, if any.
        reason = next((r for _, _, _, r in reports if r), "portfolio exhausted")
        return RaceOutcome(
            SatStatus.UNKNOWN, None, reason, None, merged, len(workers)
        )


def configs_for(n: int) -> List[SolverConfig]:
    """The first ``n`` portfolio configurations (cycled with restart
    jitter past the built-in lineup, so any n is serviceable)."""
    base = list(PORTFOLIO_CONFIGS)
    out: List[SolverConfig] = []
    for i in range(n):
        config = base[i % len(base)]
        if i >= len(base):
            config = replace(
                config, restart_base=config.restart_base + 50 * (i // len(base))
            )
        out.append(config)
    return out
