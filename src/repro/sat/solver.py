"""A CDCL SAT solver (conflict-driven clause learning), from scratch.

Implements the standard modern architecture: two-watched-literal unit
propagation, first-UIP conflict analysis with clause learning, VSIDS-style
activity-based branching with decay (served from a lazy max-heap), phase
saving, non-chronological backjumping, Luby-sequence restarts and
activity-based learned-clause database reduction.  It is a real solver —
complete and sound — sized for the miter instances produced by the
combinational equivalence checker on circuits of a few thousand gates.

The solver is *incremental*: after construction it accepts new variables
(:meth:`CdclSolver.new_var`) and clauses (:meth:`CdclSolver.add_clause`)
and can be re-solved any number of times under different assumptions
without re-reading the CNF.  Learned clauses and variable activities
persist across :meth:`CdclSolver.solve` calls, which is what makes the
incremental equivalence session (:mod:`repro.sat.incremental`) pay off —
lemmas proved for one fingerprint copy transfer to the next.

Internal literal encoding: variable ``v`` (1-based) maps to literals
``2*v`` (positive) and ``2*v + 1`` (negative); ``lit ^ 1`` negates.
"""

from __future__ import annotations

import enum
import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..budget import Budget, UNLIMITED
from ..telemetry.metrics import safe_rate
from .cnf import Cnf

_UNASSIGNED = -1


def _to_internal(lit: int) -> int:
    var = abs(lit)
    return 2 * var + (1 if lit < 0 else 0)


def _to_external(lit: int) -> int:
    var = lit >> 1
    return -var if lit & 1 else var


@dataclass
class SolverStats:
    """Counters exposed for benchmarks and tests.

    All counters accumulate over the solver's lifetime (across repeated
    :meth:`CdclSolver.solve` calls on a persistent solver), so incremental
    sessions report total work.  ``watch_visits`` counts watch-list clause
    visits during propagation (the solver's true inner loop);
    ``learned_deleted`` counts clauses discarded by database reduction;
    ``solve_seconds`` is total wall-clock time spent inside ``solve``.
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    watch_visits: int = 0
    learned_deleted: int = 0
    solve_seconds: float = 0.0

    @property
    def propagations_per_sec(self) -> float:
        """Propagation throughput over the accumulated solve time.

        Routed through :func:`repro.telemetry.safe_rate`, so an instant
        solve on a coarse clock (``solve_seconds == 0``) reports 0.0
        instead of raising ``ZeroDivisionError``.
        """
        return safe_rate(self.propagations, self.solve_seconds)


class SatStatus(enum.Enum):
    """Three-valued solver verdict."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # resource budget exhausted before a proof


class SatResult:
    """Outcome of :meth:`CdclSolver.solve`.

    ``status`` is three-valued: :data:`SatStatus.UNKNOWN` means the solver
    ran out of budget (see :class:`repro.budget.Budget`) before reaching a
    verdict; ``reason`` then records which limit was hit.  The historical
    boolean interface (``satisfiable`` / truthiness) maps UNKNOWN to
    ``False`` — no model is claimed — so pre-budget callers stay correct.
    """

    def __init__(
        self,
        status: Union[SatStatus, bool],
        model: Optional[Dict[int, bool]],
        stats: SolverStats,
        reason: Optional[str] = None,
    ):
        if isinstance(status, bool):
            status = SatStatus.SAT if status else SatStatus.UNSAT
        self.status = status
        self.model = model
        self.stats = stats
        self.reason = reason

    @property
    def satisfiable(self) -> bool:
        """True only for a proven SAT verdict (with model)."""
        return self.status is SatStatus.SAT

    @property
    def unknown(self) -> bool:
        """True when the budget ran out before a verdict."""
        return self.status is SatStatus.UNKNOWN

    def __bool__(self) -> bool:
        return self.status is SatStatus.SAT

    def value(self, var: int) -> bool:
        """Model value of ``var``; only valid when satisfiable.

        A variable absent from the model (e.g. allocated after the clauses
        were read, so the solver never saw it constrained) defaults to
        ``False`` — any completion of the model satisfies the formula.
        """
        if self.model is None:
            raise ValueError(f"no model: solver status is {self.status.value}")
        return self.model.get(var, False)


def _luby(x: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class CdclSolver:
    """An incremental CDCL solver over one growing clause database.

    Construct from a :class:`~repro.sat.cnf.Cnf` (or empty), then freely
    interleave :meth:`new_var` / :meth:`add_clause` with :meth:`solve`
    calls under assumptions.  State that persists between solves: the
    clause database (original + learned), variable activities and saved
    phases, and all root-level (decision level 0) implied assignments.
    """

    def __init__(self, cnf: Optional[Cnf] = None, restart_base: int = 100) -> None:
        self.n_vars = cnf.n_vars if cnf is not None else 0
        self.restart_base = restart_base
        self.stats = SolverStats()

        size = 2 * (self.n_vars + 1)
        self._clauses: List[List[int]] = []
        #: Parallel to ``_clauses``: True for learned (redundant) clauses.
        self._learned_mask: List[bool] = []
        #: Parallel to ``_clauses``: activity for DB-reduction ranking.
        self._clause_act: List[float] = []
        self._watches: List[List[int]] = [[] for _ in range(size)]
        self._assign: List[int] = [_UNASSIGNED] * (self.n_vars + 1)
        self._level: List[int] = [0] * (self.n_vars + 1)
        self._reason: List[Optional[int]] = [None] * (self.n_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: List[float] = [0.0] * (self.n_vars + 1)
        self._phase: List[bool] = [False] * (self.n_vars + 1)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._trivially_unsat = False
        #: Lazy VSIDS max-heap of ``(-activity_at_push, var)`` entries;
        #: stale entries (activity changed or var assigned) are skipped at
        #: pop time.
        self._heap: List[Tuple[float, int]] = [
            (0.0, var) for var in range(1, self.n_vars + 1)
        ]
        #: Learned clauses currently in the database (not yet deleted).
        self._n_learned_live = 0
        #: DB reduction fires when live learned clauses exceed this.
        self._reduce_limit = 2000

        if cnf is not None:
            seen_units: List[int] = []
            for clause in cnf.clauses:
                internal = [_to_internal(l) for l in dict.fromkeys(clause)]
                if self._tautological(internal):
                    continue
                if len(internal) == 1:
                    seen_units.append(internal[0])
                else:
                    self._add_clause(internal)
            self._reduce_limit = max(2000, len(self._clauses) // 3)
            for lit in seen_units:
                if not self._enqueue(lit, None):
                    self._trivially_unsat = True
                    return

    @staticmethod
    def _tautological(clause: Sequence[int]) -> bool:
        literals = set(clause)
        return any((lit ^ 1) in literals for lit in literals)

    # ------------------------------------------------------------------ #
    # incremental interface
    # ------------------------------------------------------------------ #

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) DIMACS index."""
        self.n_vars += 1
        var = self.n_vars
        self._watches.append([])
        self._watches.append([])
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        heapq.heappush(self._heap, (-0.0, var))
        return var

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add one clause (DIMACS literals) to the live database.

        Must be called between solves (the solver is at decision level 0
        then; :meth:`solve` always returns there).  The clause is
        simplified against root-level assignments: root-satisfied clauses
        are dropped, root-falsified literals removed.  Returns ``False``
        when the addition makes the formula trivially UNSAT (the solver
        stays usable and will answer UNSAT), ``True`` otherwise.
        """
        if self._trail_lim:
            raise ValueError("add_clause requires decision level 0")
        internal = []
        for lit in dict.fromkeys(literals):
            var = abs(lit)
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if var > self.n_vars:
                raise ValueError(f"literal {lit} references unallocated variable")
            internal.append(_to_internal(lit))
        if self._tautological(internal):
            return True
        simplified: List[int] = []
        for lit in internal:
            value = self._lit_value(lit)
            if value == 1:
                return True  # satisfied at the root level forever
            if value == 0:
                continue  # falsified at the root level forever
            simplified.append(lit)
        if not simplified:
            self._trivially_unsat = True
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self._trivially_unsat = True
                return False
            return True
        self._add_clause(simplified)
        return True

    # ------------------------------------------------------------------ #
    # clause / assignment plumbing
    # ------------------------------------------------------------------ #

    def _add_clause(self, literals: List[int], learned: bool = False) -> int:
        index = len(self._clauses)
        self._clauses.append(literals)
        self._learned_mask.append(learned)
        self._clause_act.append(self._cla_inc if learned else 0.0)
        self._watches[literals[0]].append(index)
        self._watches[literals[1]].append(index)
        if learned:
            self._n_learned_live += 1
        return index

    def _lit_value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned."""
        value = self._assign[lit >> 1]
        if value == _UNASSIGNED:
            return -1
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        var = lit >> 1
        value = 1 - (lit & 1)
        if self._assign[var] != _UNASSIGNED:
            return self._assign[var] == value
        self._assign[var] = value
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # ------------------------------------------------------------------ #
    # propagation
    # ------------------------------------------------------------------ #

    def _propagate(self, head: int) -> Tuple[Optional[int], int]:
        """Unit propagation; returns (conflicting clause index or None, head)."""
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            self.stats.propagations += 1
            false_lit = lit ^ 1
            watch_list = self._watches[false_lit]
            self.stats.watch_visits += len(watch_list)
            i = 0
            while i < len(watch_list):
                clause_index = watch_list[i]
                clause = self._clauses[clause_index]
                # Normalize: watched literals at positions 0 and 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    i += 1
                    continue
                # Find a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause_index)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting on `first`.
                if self._lit_value(first) == 0:
                    return clause_index, head
                self._enqueue(first, clause_index)
                i += 1
        return None, head

    # ------------------------------------------------------------------ #
    # conflict analysis
    # ------------------------------------------------------------------ #

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # Every heap entry is stale after a rescale; rebuild in bulk.
            self._heap = [
                (-self._activity[v], v)
                for v in range(1, self.n_vars + 1)
                if self._assign[v] == _UNASSIGNED
            ]
            heapq.heapify(self._heap)
            return
        if self._assign[var] == _UNASSIGNED:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _cla_bump(self, index: int) -> None:
        if not self._learned_mask[index]:
            return
        self._clause_act[index] += self._cla_inc
        if self._clause_act[index] > 1e20:
            for i in range(len(self._clause_act)):
                if self._learned_mask[i]:
                    self._clause_act[i] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.n_vars + 1)
        counter = 0
        pivot = -1  # the literal asserted by the current reason clause
        self._cla_bump(conflict)
        clause = self._clauses[conflict]
        index = len(self._trail)
        current_level = self._decision_level()

        while True:
            for l in clause:
                if l == pivot:
                    continue
                var = l >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(l)
            # Walk the trail backwards to the next marked literal.
            while True:
                index -= 1
                trail_lit = self._trail[index]
                if seen[trail_lit >> 1]:
                    break
            pivot = trail_lit
            counter -= 1
            seen[trail_lit >> 1] = False
            if counter == 0:
                break
            reason = self._reason[trail_lit >> 1]
            self._cla_bump(reason)
            clause = self._clauses[reason]
        learned[0] = pivot ^ 1
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted((self._level[l >> 1] for l in learned[1:]), reverse=True)
        back_level = levels[0]
        # Move one literal of back_level into watch position 1.
        for k in range(1, len(learned)):
            if self._level[learned[k] >> 1] == back_level:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, back_level

    def _backjump(self, level: int) -> None:
        heap = self._heap
        activity = self._activity
        while self._trail_lim and self._decision_level() > level:
            limit = self._trail_lim.pop()
            while len(self._trail) > limit:
                lit = self._trail.pop()
                var = lit >> 1
                self._phase[var] = bool(1 - (lit & 1))
                self._assign[var] = _UNASSIGNED
                self._reason[var] = None
                heapq.heappush(heap, (-activity[var], var))

    def _pick_branch(self) -> Optional[int]:
        heap = self._heap
        assign = self._assign
        activity = self._activity
        while heap:
            neg_act, var = heap[0]
            if assign[var] != _UNASSIGNED or -neg_act != activity[var]:
                heapq.heappop(heap)  # stale entry
                continue
            return 2 * var + (0 if self._phase[var] else 1)
        # Heap exhausted: either everything is assigned, or fresh entries
        # were lost (possible only transiently); fall back to a scan and
        # repopulate so subsequent picks are heap-served again.
        best_var, best_act = 0, -1.0
        rebuilt: List[Tuple[float, int]] = []
        for var in range(1, self.n_vars + 1):
            if assign[var] != _UNASSIGNED:
                continue
            rebuilt.append((-activity[var], var))
            if activity[var] > best_act:
                best_var, best_act = var, activity[var]
        if best_var == 0:
            return None
        heapq.heapify(rebuilt)
        self._heap = rebuilt
        return 2 * best_var + (0 if self._phase[best_var] else 1)

    # ------------------------------------------------------------------ #
    # learned-clause database reduction
    # ------------------------------------------------------------------ #

    def _maybe_reduce_db(self) -> None:
        if self._n_learned_live > self._reduce_limit:
            self._reduce_db()

    def _reduce_db(self) -> None:
        """Discard the low-activity half of the deletable learned clauses.

        Locked clauses (reasons of current assignments) and binary learned
        clauses are kept.  Clause indices are compacted and the watch lists
        and reason pointers rebuilt — called only at restart points, with
        no pending propagation.
        """
        locked = {r for r in self._reason if r is not None}
        deletable = [
            i
            for i in range(len(self._clauses))
            if self._learned_mask[i] and i not in locked and len(self._clauses[i]) > 2
        ]
        deletable.sort(key=lambda i: self._clause_act[i])
        drop = set(deletable[: len(deletable) // 2])
        if not drop:
            self._reduce_limit = int(self._reduce_limit * 1.5)
            return
        remap: Dict[int, int] = {}
        clauses: List[List[int]] = []
        learned_mask: List[bool] = []
        clause_act: List[float] = []
        for i, clause in enumerate(self._clauses):
            if i in drop:
                continue
            remap[i] = len(clauses)
            clauses.append(clause)
            learned_mask.append(self._learned_mask[i])
            clause_act.append(self._clause_act[i])
        self._clauses = clauses
        self._learned_mask = learned_mask
        self._clause_act = clause_act
        watches: List[List[int]] = [[] for _ in range(2 * (self.n_vars + 1))]
        for index, clause in enumerate(clauses):
            watches[clause[0]].append(index)
            watches[clause[1]].append(index)
        self._watches = watches
        self._reason = [
            None if r is None else remap[r] for r in self._reason
        ]
        self.stats.learned_deleted += len(drop)
        self._n_learned_live -= len(drop)
        self._reduce_limit = int(self._reduce_limit * 1.2)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
    ) -> SatResult:
        """Solve, optionally under external (DIMACS-signed) assumptions.

        ``budget`` bounds *this call*: limits compare against the
        conflicts/decisions spent since the call began (not lifetime
        totals), so a persistent solver can be re-solved under the same
        budget repeatedly.  When any limit (wall clock, conflicts,
        decisions) is hit, the solver stops and returns a
        :data:`SatStatus.UNKNOWN` result whose ``reason`` names the spent
        limit — it never raises and never runs unbounded.  The solver
        always returns at decision level 0, ready for the next
        :meth:`add_clause` / :meth:`solve`.
        """
        stats = self.stats
        conflicts0 = stats.conflicts
        propagations0 = stats.propagations
        start = time.perf_counter()
        with telemetry.span("sat.solve", vars=self.n_vars) as solve_span:
            try:
                result = self._solve(assumptions, budget)
            finally:
                elapsed = time.perf_counter() - start
                stats.solve_seconds += elapsed
                telemetry.count("sat.solves")
                telemetry.count("sat.conflicts", stats.conflicts - conflicts0)
                telemetry.count(
                    "sat.propagations", stats.propagations - propagations0
                )
                telemetry.count("sat.solve_seconds", elapsed)
                telemetry.observe("sat.solve_seconds_hist", elapsed)
            solve_span.set(
                status=result.status.value,
                conflicts=stats.conflicts - conflicts0,
            )
            return result

    def _solve(
        self,
        assumptions: Sequence[int],
        budget: Optional[Budget],
    ) -> SatResult:
        clock = (budget if budget is not None else UNLIMITED).start()
        limited = not clock.budget.unlimited
        conflicts_base = self.stats.conflicts
        decisions_base = self.stats.decisions
        if self._trivially_unsat:
            return SatResult(False, None, self.stats)
        head = 0
        conflict, head = self._propagate(head)
        if conflict is not None:
            self._trivially_unsat = True  # root-level conflict is permanent
            return SatResult(False, None, self.stats)

        for external in assumptions:
            lit = _to_internal(external)
            if self._lit_value(lit) == 1:
                continue
            if self._lit_value(lit) == 0:
                self._backjump(0)
                return SatResult(False, None, self.stats)
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)
            conflict, head = self._propagate(head)
            if conflict is not None:
                self._backjump(0)
                return SatResult(False, None, self.stats)
        assumption_level = self._decision_level()

        conflicts_since_restart = 0
        restart_limit = self.restart_base * _luby(self.stats.restarts)

        while True:
            conflict, head = self._propagate(head)
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                self._cla_inc /= self._cla_decay
                if limited:
                    reason = clock.exhausted_reason(
                        self.stats.conflicts - conflicts_base,
                        self.stats.decisions - decisions_base,
                    )
                    if reason is not None:
                        self._backjump(0)
                        return SatResult(
                            SatStatus.UNKNOWN, None, self.stats, reason
                        )
                if self._decision_level() <= assumption_level:
                    if self._decision_level() == 0:
                        self._trivially_unsat = True
                    self._backjump(0)
                    return SatResult(False, None, self.stats)
                learned, back_level = self._analyze(conflict)
                back_level = max(back_level, assumption_level)
                self._backjump(back_level)
                head = len(self._trail)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._trivially_unsat = True
                        self._backjump(0)
                        return SatResult(False, None, self.stats)
                else:
                    index = self._add_clause(learned, learned=True)
                    self.stats.learned += 1
                    self._enqueue(learned[0], index)
                self._var_inc /= self._var_decay
                continue
            if conflicts_since_restart >= restart_limit:
                self.stats.restarts += 1
                conflicts_since_restart = 0
                restart_limit = self.restart_base * _luby(self.stats.restarts)
                self._backjump(assumption_level)
                head = len(self._trail)
                self._maybe_reduce_db()
                continue
            if limited:
                reason = clock.exhausted_reason(
                    self.stats.conflicts - conflicts_base,
                    self.stats.decisions - decisions_base,
                )
                if reason is not None:
                    self._backjump(0)
                    return SatResult(SatStatus.UNKNOWN, None, self.stats, reason)
            lit = self._pick_branch()
            if lit is None:
                model = {
                    var: bool(self._assign[var])
                    for var in range(1, self.n_vars + 1)
                }
                self._backjump(0)
                return SatResult(True, model, self.stats)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._decision_level()
            )
            self._enqueue(lit, None)


def solve_cnf(
    cnf: Cnf,
    assumptions: Sequence[int] = (),
    budget: Optional[Budget] = None,
) -> SatResult:
    """Convenience wrapper: build a solver and run it once."""
    return CdclSolver(cnf).solve(assumptions, budget=budget)
