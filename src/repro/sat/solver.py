"""A CDCL SAT solver (conflict-driven clause learning), from scratch.

Implements the standard modern architecture: two-watched-literal unit
propagation, first-UIP conflict analysis with clause learning and
recursive learned-clause minimization, VSIDS-style activity-based
branching with decay (served from a lazy max-heap), phase saving,
non-chronological backjumping, Luby-sequence restarts and activity-based
learned-clause database reduction.  It is a real solver — complete and
sound — sized for the miter instances produced by the combinational
equivalence checker on circuits of a few thousand gates.

The solver is *incremental*: after construction it accepts new variables
(:meth:`CdclSolver.new_var`) and clauses (:meth:`CdclSolver.add_clause`)
and can be re-solved any number of times under different assumptions
without re-reading the CNF.  Learned clauses and variable activities
persist across :meth:`CdclSolver.solve` calls, which is what makes the
incremental equivalence session (:mod:`repro.sat.incremental`) pay off —
lemmas proved for one fingerprint copy transfer to the next.

The inner loop is tunable through :class:`SolverConfig`.  The default
configuration enables every speed feature (flat interleaved watch lists
with blocker literals and a dedicated binary-clause tier, recursive
learned-clause minimization); :data:`LEGACY_CONFIG` reproduces the
pre-tuning solver exactly, which is what the raw-speed benchmark
(``benchmarks/bench_sat_profile.py``) measures against and what the
differential suite compares verdicts with.

Internal literal encoding: variable ``v`` (1-based) maps to literals
``2*v`` (positive) and ``2*v + 1`` (negative); ``lit ^ 1`` negates.
"""

from __future__ import annotations

import enum
import heapq
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..budget import Budget, UNLIMITED
from ..telemetry.metrics import safe_rate
from .cnf import Cnf

_UNASSIGNED = -1


def _to_internal(lit: int) -> int:
    var = abs(lit)
    return 2 * var + (1 if lit < 0 else 0)


def _to_external(lit: int) -> int:
    var = lit >> 1
    return -var if lit & 1 else var


@dataclass(frozen=True)
class SolverConfig:
    """Inner-loop tuning knobs for :class:`CdclSolver`.

    Attributes:
        restart_base: Conflicts before the first restart; the Luby
            sequence scales subsequent restart intervals from this base.
        phase_saving: Remember each variable's last assigned polarity
            across backjumps and branch on it first.
        minimize: Recursive learned-clause minimization (self-subsuming
            resolution over the implication graph) after first-UIP
            analysis.
        flat_watches: Cache-friendly watch lists — flat interleaved int
            arrays ``[blocker, clause, blocker, clause, ...]`` with a
            dedicated binary-clause tier that propagates without touching
            clause objects at all.  ``False`` selects the historical
            per-literal clause-index lists.
        profile: Accumulate per-phase wall-clock time
            (propagate/analyze/decide/reduce) into :class:`SolverStats`.
            Off by default — the timers cost two clock reads per loop
            iteration.
        var_decay: VSIDS activity decay factor.
        cla_decay: Learned-clause activity decay factor.
    """

    restart_base: int = 100
    phase_saving: bool = True
    minimize: bool = True
    flat_watches: bool = True
    profile: bool = False
    var_decay: float = 0.95
    cla_decay: float = 0.999

    def key(self) -> str:
        """Stable short string identifying this configuration (cache keys)."""
        return (
            f"r{self.restart_base}-p{int(self.phase_saving)}"
            f"-m{int(self.minimize)}-f{int(self.flat_watches)}"
            f"-vd{self.var_decay:g}-cd{self.cla_decay:g}"
        )


#: The solver exactly as it behaved before the raw-speed program: no
#: learned-clause minimization, per-literal clause-index watch lists.
#: The profiling benchmark uses this as its "current solver" baseline.
LEGACY_CONFIG = SolverConfig(minimize=False, flat_watches=False)


@dataclass
class SolverStats:
    """Counters exposed for benchmarks and tests.

    All counters accumulate over the solver's lifetime (across repeated
    :meth:`CdclSolver.solve` calls on a persistent solver), so incremental
    sessions report total work.  ``watch_visits`` counts watch-list clause
    visits during propagation (the solver's true inner loop);
    ``learned_deleted`` counts clauses discarded by database reduction;
    ``minimized_literals`` counts literals removed from learned clauses by
    recursive minimization; ``solve_seconds`` is total wall-clock time
    spent inside ``solve``.  The ``*_seconds`` phase timers fill only
    under :attr:`SolverConfig.profile`.
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    watch_visits: int = 0
    learned_deleted: int = 0
    minimized_literals: int = 0
    solve_seconds: float = 0.0
    propagate_seconds: float = 0.0
    analyze_seconds: float = 0.0
    decide_seconds: float = 0.0
    reduce_seconds: float = 0.0

    _SUM_FIELDS = (
        "decisions",
        "propagations",
        "conflicts",
        "learned",
        "restarts",
        "watch_visits",
        "learned_deleted",
        "minimized_literals",
        "solve_seconds",
        "propagate_seconds",
        "analyze_seconds",
        "decide_seconds",
        "reduce_seconds",
    )

    @property
    def propagations_per_sec(self) -> float:
        """Propagation throughput over the accumulated solve time.

        Routed through :func:`repro.telemetry.safe_rate`, so an instant
        solve on a coarse clock (``solve_seconds == 0``) reports 0.0
        instead of raising ``ZeroDivisionError``.  Derived from the raw
        counters on every read — never stored — so merged stats report
        the true aggregate rate instead of a sum or average of rates.
        """
        return safe_rate(self.propagations, self.solve_seconds)

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Fold another worker's counters into this one, in place.

        Raw counters and phase seconds add; ``max_decision_level`` takes
        the maximum.  Derived rates (``propagations_per_sec``) are *not*
        summed — they recompute from the merged raw counters, which is
        what keeps portfolio/pool aggregation free of double counting.
        Returns ``self`` so merges chain.
        """
        for name in self._SUM_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.max_decision_level = max(
            self.max_decision_level, other.max_decision_level
        )
        return self

    @classmethod
    def merged(cls, many: Sequence["SolverStats"]) -> "SolverStats":
        """A fresh stats object folding ``many`` together (each once)."""
        total = cls()
        for stats in many:
            total.merge(stats)
        return total

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready snapshot including the derived throughput."""
        payload: Dict[str, float] = {
            name: getattr(self, name) for name in self._SUM_FIELDS
        }
        payload["max_decision_level"] = self.max_decision_level
        payload["propagations_per_sec"] = self.propagations_per_sec
        return payload


class SatStatus(enum.Enum):
    """Three-valued solver verdict."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # resource budget exhausted before a proof


class SatResult:
    """Outcome of :meth:`CdclSolver.solve`.

    ``status`` is three-valued: :data:`SatStatus.UNKNOWN` means the solver
    ran out of budget (see :class:`repro.budget.Budget`) before reaching a
    verdict; ``reason`` then records which limit was hit.  The historical
    boolean interface (``satisfiable`` / truthiness) maps UNKNOWN to
    ``False`` — no model is claimed — so pre-budget callers stay correct.
    """

    def __init__(
        self,
        status: Union[SatStatus, bool],
        model: Optional[Dict[int, bool]],
        stats: SolverStats,
        reason: Optional[str] = None,
    ):
        if isinstance(status, bool):
            status = SatStatus.SAT if status else SatStatus.UNSAT
        self.status = status
        self.model = model
        self.stats = stats
        self.reason = reason

    @property
    def satisfiable(self) -> bool:
        """True only for a proven SAT verdict (with model)."""
        return self.status is SatStatus.SAT

    @property
    def unknown(self) -> bool:
        """True when the budget ran out before a verdict."""
        return self.status is SatStatus.UNKNOWN

    def __bool__(self) -> bool:
        return self.status is SatStatus.SAT

    def value(self, var: int) -> bool:
        """Model value of ``var``; only valid when satisfiable.

        A variable absent from the model (e.g. allocated after the clauses
        were read, so the solver never saw it constrained) defaults to
        ``False`` — any completion of the model satisfies the formula.
        """
        if self.model is None:
            raise ValueError(f"no model: solver status is {self.status.value}")
        return self.model.get(var, False)


def _luby(x: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class CdclSolver:
    """An incremental CDCL solver over one growing clause database.

    Construct from a :class:`~repro.sat.cnf.Cnf` (or empty), then freely
    interleave :meth:`new_var` / :meth:`add_clause` with :meth:`solve`
    calls under assumptions.  State that persists between solves: the
    clause database (original + learned), variable activities and saved
    phases, and all root-level (decision level 0) implied assignments.

    ``config`` selects the inner-loop machinery (see
    :class:`SolverConfig`); the legacy ``restart_base`` keyword overrides
    the config's base so historical call sites keep working.
    """

    def __init__(
        self,
        cnf: Optional[Cnf] = None,
        restart_base: Optional[int] = None,
        config: Optional[SolverConfig] = None,
    ) -> None:
        config = config if config is not None else SolverConfig()
        if restart_base is not None and restart_base != config.restart_base:
            config = replace(config, restart_base=restart_base)
        self.config = config
        self.restart_base = config.restart_base
        self.n_vars = cnf.n_vars if cnf is not None else 0
        self.stats = SolverStats()

        size = 2 * (self.n_vars + 1)
        self._flat = config.flat_watches
        self._clauses: List[List[int]] = []
        #: Parallel to ``_clauses``: True for learned (redundant) clauses.
        self._learned_mask: List[bool] = []
        #: Parallel to ``_clauses``: activity for DB-reduction ranking.
        self._clause_act: List[float] = []
        #: Flat mode: interleaved ``[blocker, clause, ...]`` per literal
        #: for clauses of 3+ literals.  Legacy mode: plain clause-index
        #: lists holding every clause.
        self._watches: List[List[int]] = [[] for _ in range(size)]
        #: Flat mode only: interleaved ``[other_lit, clause, ...]`` per
        #: literal for binary clauses — propagated without dereferencing
        #: the clause object.
        self._bin_watches: List[List[int]] = [[] for _ in range(size)]
        self._assign: List[int] = [_UNASSIGNED] * (self.n_vars + 1)
        self._level: List[int] = [0] * (self.n_vars + 1)
        self._reason: List[Optional[int]] = [None] * (self.n_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: List[float] = [0.0] * (self.n_vars + 1)
        self._phase: List[bool] = [False] * (self.n_vars + 1)
        self._var_inc = 1.0
        self._var_decay = config.var_decay
        self._cla_inc = 1.0
        self._cla_decay = config.cla_decay
        self._trivially_unsat = False
        #: Lazy VSIDS max-heap of ``(-activity_at_push, var)`` entries;
        #: stale entries (activity changed or var assigned) are skipped at
        #: pop time.
        self._heap: List[Tuple[float, int]] = [
            (0.0, var) for var in range(1, self.n_vars + 1)
        ]
        #: Learned clauses currently in the database (not yet deleted).
        self._n_learned_live = 0
        #: DB reduction fires when live learned clauses exceed this.
        self._reduce_limit = 2000

        if cnf is not None:
            seen_units: List[int] = []
            for clause in cnf.clauses:
                internal = [_to_internal(l) for l in dict.fromkeys(clause)]
                if self._tautological(internal):
                    continue
                if len(internal) == 1:
                    seen_units.append(internal[0])
                else:
                    self._add_clause(internal)
            self._reduce_limit = max(2000, len(self._clauses) // 3)
            for lit in seen_units:
                if not self._enqueue(lit, None):
                    self._trivially_unsat = True
                    return

    @staticmethod
    def _tautological(clause: Sequence[int]) -> bool:
        literals = set(clause)
        return any((lit ^ 1) in literals for lit in literals)

    # ------------------------------------------------------------------ #
    # incremental interface
    # ------------------------------------------------------------------ #

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) DIMACS index."""
        self.n_vars += 1
        var = self.n_vars
        self._watches.append([])
        self._watches.append([])
        self._bin_watches.append([])
        self._bin_watches.append([])
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        heapq.heappush(self._heap, (-0.0, var))
        return var

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add one clause (DIMACS literals) to the live database.

        Must be called between solves (the solver is at decision level 0
        then; :meth:`solve` always returns there).  The clause is
        simplified against root-level assignments: root-satisfied clauses
        are dropped, root-falsified literals removed.  Returns ``False``
        when the addition makes the formula trivially UNSAT (the solver
        stays usable and will answer UNSAT), ``True`` otherwise.
        """
        if self._trail_lim:
            raise ValueError("add_clause requires decision level 0")
        internal = []
        for lit in dict.fromkeys(literals):
            var = abs(lit)
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if var > self.n_vars:
                raise ValueError(f"literal {lit} references unallocated variable")
            internal.append(_to_internal(lit))
        if self._tautological(internal):
            return True
        simplified: List[int] = []
        for lit in internal:
            value = self._lit_value(lit)
            if value == 1:
                return True  # satisfied at the root level forever
            if value == 0:
                continue  # falsified at the root level forever
            simplified.append(lit)
        if not simplified:
            self._trivially_unsat = True
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self._trivially_unsat = True
                return False
            return True
        self._add_clause(simplified)
        return True

    def export_clauses(self) -> List[List[int]]:
        """The live clause database in external (DIMACS) literals.

        Includes root-level implied units and every original *and*
        learned clause — learned clauses are logical consequences, so the
        export is equivalent to the solver's accumulated formula.  Used
        by the portfolio runner to seed racing solvers.
        """
        out: List[List[int]] = [
            [_to_external(lit)] for lit in self._trail
            if self._level[lit >> 1] == 0
        ]
        for clause in self._clauses:
            out.append([_to_external(lit) for lit in clause])
        return out

    # ------------------------------------------------------------------ #
    # clause / assignment plumbing
    # ------------------------------------------------------------------ #

    def _add_clause(self, literals: List[int], learned: bool = False) -> int:
        index = len(self._clauses)
        self._clauses.append(literals)
        self._learned_mask.append(learned)
        self._clause_act.append(self._cla_inc if learned else 0.0)
        self._watch_clause(index, literals)
        if learned:
            self._n_learned_live += 1
        return index

    def _watch_clause(self, index: int, literals: List[int]) -> None:
        if self._flat:
            if len(literals) == 2:
                a, b = literals
                self._bin_watches[a].append(b)
                self._bin_watches[a].append(index)
                self._bin_watches[b].append(a)
                self._bin_watches[b].append(index)
            else:
                a, b = literals[0], literals[1]
                self._watches[a].append(b)
                self._watches[a].append(index)
                self._watches[b].append(a)
                self._watches[b].append(index)
        else:
            self._watches[literals[0]].append(index)
            self._watches[literals[1]].append(index)

    def _lit_value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned."""
        value = self._assign[lit >> 1]
        if value == _UNASSIGNED:
            return -1
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        var = lit >> 1
        value = 1 - (lit & 1)
        if self._assign[var] != _UNASSIGNED:
            return self._assign[var] == value
        self._assign[var] = value
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # ------------------------------------------------------------------ #
    # propagation
    # ------------------------------------------------------------------ #

    def _propagate(self, head: int) -> Tuple[Optional[int], int]:
        if self._flat:
            return self._propagate_flat(head)
        return self._propagate_legacy(head)

    def _propagate_flat(self, head: int) -> Tuple[Optional[int], int]:
        """Unit propagation over the flat interleaved watch arrays.

        Binary clauses propagate straight from their ``(other, clause)``
        pairs; longer clauses check the interleaved blocker literal first
        and touch the clause object only when the blocker is not already
        true.  Returns (conflicting clause index or None, head).
        """
        stats = self.stats
        assign = self._assign
        clauses = self._clauses
        trail = self._trail
        while head < len(trail):
            lit = trail[head]
            head += 1
            stats.propagations += 1
            false_lit = lit ^ 1

            blist = self._bin_watches[false_lit]
            stats.watch_visits += len(blist) >> 1
            for i in range(0, len(blist), 2):
                other = blist[i]
                value = assign[other >> 1]
                if value == _UNASSIGNED:
                    self._enqueue(other, blist[i + 1])
                elif value == (other & 1):
                    return blist[i + 1], head  # conflict: other is false

            watch_list = self._watches[false_lit]
            n = len(watch_list)
            stats.watch_visits += n >> 1
            i = j = 0
            conflict: Optional[int] = None
            while i < n:
                blocker = watch_list[i]
                value = assign[blocker >> 1]
                if value != _UNASSIGNED and value != (blocker & 1):
                    # Blocker literal is true; clause satisfied untouched.
                    watch_list[j] = blocker
                    watch_list[j + 1] = watch_list[i + 1]
                    i += 2
                    j += 2
                    continue
                clause_index = watch_list[i + 1]
                clause = clauses[clause_index]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                first_value = self._lit_value(first)
                if first_value == 1:
                    watch_list[j] = first
                    watch_list[j + 1] = clause_index
                    i += 2
                    j += 2
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        new_list = self._watches[clause[1]]
                        new_list.append(first)
                        new_list.append(clause_index)
                        moved = True
                        break
                if moved:
                    i += 2
                    continue
                if first_value == 0:
                    conflict = clause_index
                    # Keep the unprocessed tail (including this entry).
                    watch_list[j:] = watch_list[i:]
                    return conflict, head
                self._enqueue(first, clause_index)
                watch_list[j] = first
                watch_list[j + 1] = clause_index
                i += 2
                j += 2
            if j != n:
                del watch_list[j:]
        return None, head

    def _propagate_legacy(self, head: int) -> Tuple[Optional[int], int]:
        """Unit propagation; returns (conflicting clause index or None, head)."""
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            self.stats.propagations += 1
            false_lit = lit ^ 1
            watch_list = self._watches[false_lit]
            self.stats.watch_visits += len(watch_list)
            i = 0
            while i < len(watch_list):
                clause_index = watch_list[i]
                clause = self._clauses[clause_index]
                # Normalize: watched literals at positions 0 and 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    i += 1
                    continue
                # Find a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause_index)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting on `first`.
                if self._lit_value(first) == 0:
                    return clause_index, head
                self._enqueue(first, clause_index)
                i += 1
        return None, head

    # ------------------------------------------------------------------ #
    # conflict analysis
    # ------------------------------------------------------------------ #

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # Every heap entry is stale after a rescale; rebuild in bulk.
            self._heap = [
                (-self._activity[v], v)
                for v in range(1, self.n_vars + 1)
                if self._assign[v] == _UNASSIGNED
            ]
            heapq.heapify(self._heap)
            return
        if self._assign[var] == _UNASSIGNED:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _cla_bump(self, index: int) -> None:
        if not self._learned_mask[index]:
            return
        self._clause_act[index] += self._cla_inc
        if self._clause_act[index] > 1e20:
            for i in range(len(self._clause_act)):
                if self._learned_mask[i]:
                    self._clause_act[i] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """First-UIP learning (+ optional minimization); returns
        (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.n_vars + 1)
        counter = 0
        pivot = -1  # the literal asserted by the current reason clause
        self._cla_bump(conflict)
        clause = self._clauses[conflict]
        index = len(self._trail)
        current_level = self._decision_level()

        while True:
            for l in clause:
                if l == pivot:
                    continue
                var = l >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(l)
            # Walk the trail backwards to the next marked literal.
            while True:
                index -= 1
                trail_lit = self._trail[index]
                if seen[trail_lit >> 1]:
                    break
            pivot = trail_lit
            counter -= 1
            seen[trail_lit >> 1] = False
            if counter == 0:
                break
            reason = self._reason[trail_lit >> 1]
            self._cla_bump(reason)
            clause = self._clauses[reason]
        learned[0] = pivot ^ 1

        if self.config.minimize and len(learned) > 2:
            learned = self._minimize_learned(learned, seen)
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        back_level = max(self._level[l >> 1] for l in learned[1:])
        # Move one literal of back_level into watch position 1.
        for k in range(1, len(learned)):
            if self._level[learned[k] >> 1] == back_level:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, back_level

    def _minimize_learned(self, learned: List[int], seen: List[bool]) -> List[int]:
        """Recursive learned-clause minimization (MiniSat's litRedundant).

        A non-UIP literal is dropped when its negation is implied by the
        remaining clause literals through the implication graph — i.e.
        every path from it upward terminates in level-0 facts or literals
        already in the clause.  ``seen`` arrives marking exactly the
        clause's non-UIP variables and is extended with proven-redundant
        variables so later checks reuse earlier proofs.
        """
        toclear: List[int] = []
        kept = [learned[0]]
        removed = 0
        for lit in learned[1:]:
            if self._reason[lit >> 1] is None or not self._lit_redundant(
                lit, seen, toclear
            ):
                kept.append(lit)
            else:
                removed += 1
        self.stats.minimized_literals += removed
        return kept

    def _lit_redundant(
        self, lit: int, seen: List[bool], toclear: List[int]
    ) -> bool:
        stack = [lit]
        top = len(toclear)
        while stack:
            p = stack.pop()
            clause = self._clauses[self._reason[p >> 1]]
            p_var = p >> 1
            for q in clause:
                var = q >> 1
                if var == p_var or seen[var] or self._level[var] == 0:
                    continue
                if self._reason[var] is None:
                    # Reached a decision outside the clause: not redundant.
                    for u in toclear[top:]:
                        seen[u] = False
                    del toclear[top:]
                    return False
                seen[var] = True
                stack.append(q)
                toclear.append(var)
        return True

    def _backjump(self, level: int) -> None:
        heap = self._heap
        activity = self._activity
        save_phase = self.config.phase_saving
        while self._trail_lim and self._decision_level() > level:
            limit = self._trail_lim.pop()
            while len(self._trail) > limit:
                lit = self._trail.pop()
                var = lit >> 1
                if save_phase:
                    self._phase[var] = bool(1 - (lit & 1))
                self._assign[var] = _UNASSIGNED
                self._reason[var] = None
                heapq.heappush(heap, (-activity[var], var))

    def _pick_branch(self) -> Optional[int]:
        heap = self._heap
        assign = self._assign
        activity = self._activity
        while heap:
            neg_act, var = heap[0]
            if assign[var] != _UNASSIGNED or -neg_act != activity[var]:
                heapq.heappop(heap)  # stale entry
                continue
            return 2 * var + (0 if self._phase[var] else 1)
        # Heap exhausted: either everything is assigned, or fresh entries
        # were lost (possible only transiently); fall back to a scan and
        # repopulate so subsequent picks are heap-served again.
        best_var, best_act = 0, -1.0
        rebuilt: List[Tuple[float, int]] = []
        for var in range(1, self.n_vars + 1):
            if assign[var] != _UNASSIGNED:
                continue
            rebuilt.append((-activity[var], var))
            if activity[var] > best_act:
                best_var, best_act = var, activity[var]
        if best_var == 0:
            return None
        heapq.heapify(rebuilt)
        self._heap = rebuilt
        return 2 * best_var + (0 if self._phase[best_var] else 1)

    # ------------------------------------------------------------------ #
    # learned-clause database reduction
    # ------------------------------------------------------------------ #

    def _maybe_reduce_db(self) -> None:
        if self._n_learned_live > self._reduce_limit:
            self._reduce_db()

    def _reduce_db(self) -> None:
        """Discard the low-activity half of the deletable learned clauses.

        Locked clauses (reasons of current assignments) and binary learned
        clauses are kept.  Clause indices are compacted and the watch lists
        and reason pointers rebuilt — called only at restart points, with
        no pending propagation.
        """
        locked = {r for r in self._reason if r is not None}
        deletable = [
            i
            for i in range(len(self._clauses))
            if self._learned_mask[i] and i not in locked and len(self._clauses[i]) > 2
        ]
        deletable.sort(key=lambda i: self._clause_act[i])
        drop = set(deletable[: len(deletable) // 2])
        if not drop:
            self._reduce_limit = int(self._reduce_limit * 1.5)
            return
        remap: Dict[int, int] = {}
        clauses: List[List[int]] = []
        learned_mask: List[bool] = []
        clause_act: List[float] = []
        for i, clause in enumerate(self._clauses):
            if i in drop:
                continue
            remap[i] = len(clauses)
            clauses.append(clause)
            learned_mask.append(self._learned_mask[i])
            clause_act.append(self._clause_act[i])
        self._clauses = clauses
        self._learned_mask = learned_mask
        self._clause_act = clause_act
        size = 2 * (self.n_vars + 1)
        self._watches = [[] for _ in range(size)]
        self._bin_watches = [[] for _ in range(size)]
        for index, clause in enumerate(clauses):
            self._watch_clause(index, clause)
        self._reason = [
            None if r is None else remap[r] for r in self._reason
        ]
        self.stats.learned_deleted += len(drop)
        self._n_learned_live -= len(drop)
        self._reduce_limit = int(self._reduce_limit * 1.2)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
        interrupt: Optional[Callable[[], bool]] = None,
    ) -> SatResult:
        """Solve, optionally under external (DIMACS-signed) assumptions.

        ``budget`` bounds *this call*: limits compare against the
        conflicts/decisions spent since the call began (not lifetime
        totals), so a persistent solver can be re-solved under the same
        budget repeatedly.  When any limit (wall clock, conflicts,
        decisions) is hit, the solver stops and returns a
        :data:`SatStatus.UNKNOWN` result whose ``reason`` names the spent
        limit — it never raises and never runs unbounded.  The solver
        always returns at decision level 0, ready for the next
        :meth:`add_clause` / :meth:`solve`.

        ``interrupt`` is polled at the same cadence as the budget; when it
        returns true the solver stops with UNKNOWN (reason
        ``"interrupted"``) — the cooperative cancellation hook used by the
        portfolio runner to stop racing losers.
        """
        stats = self.stats
        conflicts0 = stats.conflicts
        propagations0 = stats.propagations
        start = time.perf_counter()
        with telemetry.span("sat.solve", vars=self.n_vars) as solve_span:
            try:
                result = self._solve(assumptions, budget, interrupt)
            finally:
                elapsed = time.perf_counter() - start
                stats.solve_seconds += elapsed
                telemetry.count("sat.solves")
                telemetry.count("sat.conflicts", stats.conflicts - conflicts0)
                telemetry.count(
                    "sat.propagations", stats.propagations - propagations0
                )
                telemetry.count("sat.solve_seconds", elapsed)
                telemetry.observe("sat.solve_seconds_hist", elapsed)
            solve_span.set(
                status=result.status.value,
                conflicts=stats.conflicts - conflicts0,
            )
            return result

    def _solve(
        self,
        assumptions: Sequence[int],
        budget: Optional[Budget],
        interrupt: Optional[Callable[[], bool]] = None,
    ) -> SatResult:
        clock = (budget if budget is not None else UNLIMITED).start()
        limited = not clock.budget.unlimited
        profile = self.config.profile
        perf = time.perf_counter
        stats = self.stats
        conflicts_base = stats.conflicts
        decisions_base = stats.decisions
        if self._trivially_unsat:
            return SatResult(False, None, stats)
        head = 0
        conflict, head = self._propagate(head)
        if conflict is not None:
            self._trivially_unsat = True  # root-level conflict is permanent
            return SatResult(False, None, stats)

        for external in assumptions:
            lit = _to_internal(external)
            if self._lit_value(lit) == 1:
                continue
            if self._lit_value(lit) == 0:
                self._backjump(0)
                return SatResult(False, None, stats)
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)
            conflict, head = self._propagate(head)
            if conflict is not None:
                self._backjump(0)
                return SatResult(False, None, stats)
        assumption_level = self._decision_level()

        conflicts_since_restart = 0
        restart_base = self.config.restart_base
        restart_limit = restart_base * _luby(stats.restarts)

        while True:
            if profile:
                t0 = perf()
                conflict, head = self._propagate(head)
                stats.propagate_seconds += perf() - t0
            else:
                conflict, head = self._propagate(head)
            if conflict is not None:
                stats.conflicts += 1
                conflicts_since_restart += 1
                self._cla_inc /= self._cla_decay
                if interrupt is not None and interrupt():
                    self._backjump(0)
                    return SatResult(
                        SatStatus.UNKNOWN, None, stats, "interrupted"
                    )
                if limited:
                    reason = clock.exhausted_reason(
                        stats.conflicts - conflicts_base,
                        stats.decisions - decisions_base,
                    )
                    if reason is not None:
                        self._backjump(0)
                        return SatResult(
                            SatStatus.UNKNOWN, None, stats, reason
                        )
                if self._decision_level() <= assumption_level:
                    if self._decision_level() == 0:
                        self._trivially_unsat = True
                    self._backjump(0)
                    return SatResult(False, None, stats)
                if profile:
                    t0 = perf()
                learned, back_level = self._analyze(conflict)
                back_level = max(back_level, assumption_level)
                self._backjump(back_level)
                if profile:
                    stats.analyze_seconds += perf() - t0
                head = len(self._trail)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._trivially_unsat = True
                        self._backjump(0)
                        return SatResult(False, None, stats)
                else:
                    index = self._add_clause(learned, learned=True)
                    stats.learned += 1
                    self._enqueue(learned[0], index)
                self._var_inc /= self._var_decay
                continue
            if conflicts_since_restart >= restart_limit:
                stats.restarts += 1
                conflicts_since_restart = 0
                restart_limit = restart_base * _luby(stats.restarts)
                self._backjump(assumption_level)
                head = len(self._trail)
                if profile:
                    t0 = perf()
                    self._maybe_reduce_db()
                    stats.reduce_seconds += perf() - t0
                else:
                    self._maybe_reduce_db()
                continue
            if interrupt is not None and interrupt():
                self._backjump(0)
                return SatResult(SatStatus.UNKNOWN, None, stats, "interrupted")
            if limited:
                reason = clock.exhausted_reason(
                    stats.conflicts - conflicts_base,
                    stats.decisions - decisions_base,
                )
                if reason is not None:
                    self._backjump(0)
                    return SatResult(SatStatus.UNKNOWN, None, stats, reason)
            if profile:
                t0 = perf()
                lit = self._pick_branch()
                stats.decide_seconds += perf() - t0
            else:
                lit = self._pick_branch()
            if lit is None:
                model = {
                    var: bool(self._assign[var])
                    for var in range(1, self.n_vars + 1)
                }
                self._backjump(0)
                return SatResult(True, model, stats)
            stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            stats.max_decision_level = max(
                stats.max_decision_level, self._decision_level()
            )
            self._enqueue(lit, None)


def solve_cnf(
    cnf: Cnf,
    assumptions: Sequence[int] = (),
    budget: Optional[Budget] = None,
    config: Optional[SolverConfig] = None,
) -> SatResult:
    """Convenience wrapper: build a solver and run it once."""
    return CdclSolver(cnf, config=config).solve(assumptions, budget=budget)
