"""And-inverter graphs with structural hashing (ABC's core structure)."""

from .graph import (
    FALSE,
    TRUE,
    Aig,
    aig_to_circuit,
    circuit_to_aig,
    lit_is_complemented,
    lit_node,
    lit_not,
    strash_equivalent,
)

__all__ = [
    "FALSE",
    "TRUE",
    "Aig",
    "aig_to_circuit",
    "circuit_to_aig",
    "lit_is_complemented",
    "lit_node",
    "lit_not",
    "strash_equivalent",
]
