"""And-Inverter Graphs with structural hashing (strashing).

The AIG is the workhorse representation inside Berkeley ABC; this module
provides the part of it the reproduction benefits from: a hash-consed
two-input-AND + complemented-edge network with constant folding and local
simplification rules, conversions to and from gate-level circuits, and a
fast sufficient equivalence check (strash equality).

Literals encode a node and a polarity: ``literal = 2 * node + complement``.
Node 0 is the constant-FALSE node, so literal 0 is FALSE and literal 1 is
TRUE.  Primary inputs are leaf nodes; every other node is a structural
AND of two literals, uniquified by the strash table, with the rewrite
rules ``x & x = x``, ``x & !x = 0``, ``x & 1 = x`` and ``x & 0 = 0``
applied on construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cells import functions
from ..cells.library import CellLibrary
from ..netlist.circuit import Circuit

FALSE = 0
TRUE = 1


def lit_not(literal: int) -> int:
    """Complement a literal."""
    return literal ^ 1


def lit_node(literal: int) -> int:
    """Node index of a literal."""
    return literal >> 1


def lit_is_complemented(literal: int) -> bool:
    return bool(literal & 1)


class Aig:
    """A strashed and-inverter graph."""

    def __init__(self) -> None:
        # node 0 is constant false; inputs and ANDs follow.
        self._fanins: List[Optional[Tuple[int, int]]] = [None]
        self._input_names: List[str] = []
        self._input_node: Dict[str, int] = {}
        self._strash: Dict[Tuple[int, int], int] = {}
        self._outputs: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str) -> int:
        """Declare a primary input; returns its (positive) literal."""
        if name in self._input_node:
            raise ValueError(f"duplicate AIG input {name!r}")
        node = len(self._fanins)
        self._fanins.append(None)
        self._input_node[name] = node
        self._input_names.append(name)
        return 2 * node

    def input_literal(self, name: str) -> int:
        return 2 * self._input_node[name]

    def and_(self, a: int, b: int) -> int:
        """Strashed AND of two literals with local simplification."""
        if a > b:
            a, b = b, a
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        if a == lit_not(b):
            return FALSE
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(key)
            self._strash[key] = node
        return 2 * node

    def or_(self, a: int, b: int) -> int:
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, lit_not(b)), self.and_(lit_not(a), b))

    def and_many(self, literals: Sequence[int]) -> int:
        acc = TRUE
        for literal in literals:
            acc = self.and_(acc, literal)
        return acc

    def or_many(self, literals: Sequence[int]) -> int:
        acc = FALSE
        for literal in literals:
            acc = self.or_(acc, literal)
        return acc

    def xor_many(self, literals: Sequence[int]) -> int:
        acc = FALSE
        for literal in literals:
            acc = self.xor_(acc, literal)
        return acc

    def add_output(self, name: str, literal: int) -> None:
        self._outputs.append((name, literal))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        """Total nodes including the constant and the inputs."""
        return len(self._fanins)

    @property
    def n_ands(self) -> int:
        return len(self._strash)

    @property
    def n_inputs(self) -> int:
        return len(self._input_names)

    @property
    def inputs(self) -> List[str]:
        return list(self._input_names)

    @property
    def outputs(self) -> List[Tuple[str, int]]:
        return list(self._outputs)

    def is_input_node(self, node: int) -> bool:
        return node != 0 and self._fanins[node] is None

    def fanins(self, node: int) -> Tuple[int, int]:
        pair = self._fanins[node]
        if pair is None:
            raise ValueError(f"node {node} is not an AND node")
        return pair

    def levels(self) -> Dict[int, int]:
        """Node -> AND-depth (inputs and the constant at level 0)."""
        level: Dict[int, int] = {}
        for node in range(self.n_nodes):
            pair = self._fanins[node]
            if pair is None:
                level[node] = 0
            else:
                level[node] = 1 + max(
                    level[lit_node(pair[0])], level[lit_node(pair[1])]
                )
        return level

    def depth(self) -> int:
        levels = self.levels()
        if not self._outputs:
            return 0
        return max(levels[lit_node(lit)] for _, lit in self._outputs)

    def evaluate(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Evaluate all outputs for one input assignment."""
        value: List[int] = [0] * self.n_nodes
        for name, node in self._input_node.items():
            value[node] = assignment.get(name, 0) & 1
        for node in range(1, self.n_nodes):
            pair = self._fanins[node]
            if pair is None:
                continue
            a, b = pair
            va = value[lit_node(a)] ^ (a & 1)
            vb = value[lit_node(b)] ^ (b & 1)
            value[node] = va & vb
        result = {}
        for name, literal in self._outputs:
            result[name] = value[lit_node(literal)] ^ (literal & 1)
        return result


def circuit_to_aig(circuit: Circuit) -> Aig:
    """Compile a gate-level circuit into a strashed AIG."""
    aig = Aig()
    literal_of: Dict[str, int] = {}
    for name in circuit.inputs:
        literal_of[name] = aig.add_input(name)
    for gate in circuit.topological_order():
        kind = gate.kind
        if kind == "CONST0":
            literal_of[gate.name] = FALSE
            continue
        if kind == "CONST1":
            literal_of[gate.name] = TRUE
            continue
        operands = [literal_of[n] for n in gate.inputs]
        if kind == "BUF":
            literal_of[gate.name] = operands[0]
            continue
        if kind == "INV":
            literal_of[gate.name] = lit_not(operands[0])
            continue
        base = functions.base_operator(kind)
        if base == "AND":
            value = aig.and_many(operands)
        elif base == "OR":
            value = aig.or_many(operands)
        else:
            value = aig.xor_many(operands)
        if functions.is_inverting(kind):
            value = lit_not(value)
        literal_of[gate.name] = value
    for net in circuit.outputs:
        aig.add_output(net, literal_of[net])
    return aig


def aig_to_circuit(
    aig: Aig,
    name: str = "aig",
    library: Optional[CellLibrary] = None,
) -> Circuit:
    """Lower an AIG to an AND2/INV gate-level netlist.

    Only nodes in the transitive fanin of an output are emitted.
    Complemented edges become shared inverter gates; outputs keep their
    declared names (via an inverter or buffer at the boundary).
    """
    circuit = Circuit(name, library)
    for input_name in aig.inputs:
        circuit.add_input(input_name)

    # Mark live nodes.
    live = set()
    stack = [lit_node(lit) for _, lit in aig.outputs]
    while stack:
        node = stack.pop()
        if node in live or node == 0 or aig.is_input_node(node):
            continue
        live.add(node)
        a, b = aig.fanins(node)
        stack.extend((lit_node(a), lit_node(b)))

    net_of_node: Dict[int, str] = {}
    for input_name in aig.inputs:
        net_of_node[aig.input_literal(input_name) >> 1] = input_name
    inverted_of: Dict[str, str] = {}
    const_nets: Dict[int, str] = {}

    def const_net(value: int) -> str:
        net = const_nets.get(value)
        if net is None:
            net = f"aig_const{value}"
            circuit.add_gate(net, "CONST1" if value else "CONST0", [])
            const_nets[value] = net
        return net

    def literal_net(literal: int) -> str:
        node = lit_node(literal)
        if node == 0:
            return const_net(1 if lit_is_complemented(literal) else 0)
        net = net_of_node[node]
        if not lit_is_complemented(literal):
            return net
        cached = inverted_of.get(net)
        if cached is None:
            cached = f"aig_n{node}_inv"
            circuit.add_gate(cached, "INV", [net])
            inverted_of[net] = cached
        return cached

    for node in range(aig.n_nodes):
        if node not in live:
            continue
        a, b = aig.fanins(node)
        circuit.add_gate(
            f"aig_n{node}", "AND", [literal_net(a), literal_net(b)]
        )
        net_of_node[node] = f"aig_n{node}"

    for output_name, literal in aig.outputs:
        if circuit.has_net(output_name):
            # An input feeding through under its own name.
            if not lit_is_complemented(literal) and lit_node(literal) in net_of_node \
                    and net_of_node[lit_node(literal)] == output_name:
                circuit.add_output(output_name)
                continue
            raise ValueError(f"output name {output_name!r} collides with a net")
        source = literal_net(literal)
        circuit.add_gate(output_name, "BUF", [source])
        circuit.add_output(output_name)
    circuit.validate()
    return circuit


def strash_equivalent(left: Circuit, right: Circuit) -> bool:
    """Fast *sufficient* equivalence check via shared strashing.

    Compiles both circuits into one AIG (shared inputs); identical output
    literals prove equivalence.  A ``False`` result is inconclusive —
    functionally equal but structurally different logic may strash to
    different nodes — so callers fall back to simulation or SAT.
    """
    if set(left.inputs) != set(right.inputs):
        return False
    if list(left.outputs) != list(right.outputs):
        return False
    aig = Aig()
    literal_of: Dict[str, int] = {}
    for name in left.inputs:
        literal_of[name] = aig.add_input(name)

    def compile_into(circuit: Circuit, prefix: str) -> Dict[str, int]:
        local = dict(literal_of)
        for gate in circuit.topological_order():
            kind = gate.kind
            if kind == "CONST0":
                local[gate.name] = FALSE
                continue
            if kind == "CONST1":
                local[gate.name] = TRUE
                continue
            operands = [local[n] for n in gate.inputs]
            if kind == "BUF":
                local[gate.name] = operands[0]
                continue
            if kind == "INV":
                local[gate.name] = lit_not(operands[0])
                continue
            base = functions.base_operator(kind)
            if base == "AND":
                value = aig.and_many(operands)
            elif base == "OR":
                value = aig.or_many(operands)
            else:
                value = aig.xor_many(operands)
            if functions.is_inverting(kind):
                value = lit_not(value)
            local[gate.name] = value
        return {net: local[net] for net in circuit.outputs}

    left_outputs = compile_into(left, "L")
    right_outputs = compile_into(right, "R")
    return all(left_outputs[o] == right_outputs[o] for o in left.outputs)
