"""Declarative campaign specifications and their deterministic expansion.

A :class:`CampaignSpec` names *what* to run — designs × job kind ×
parameter grid × seed — and nothing about *how* (worker counts, timeouts,
retry budgets live in :class:`~repro.campaign.scheduler.CampaignOptions`).
That split is what makes resume sound: the spec is stored inside the
result database, expansion is a pure function of the spec, and every
expanded job carries a content-derived :attr:`Job.job_id`, so re-running
the same spec against the same DB re-derives exactly the same job rows
and executes only the ones not yet in a terminal state.

Job kinds:

``fingerprint``
    One job per issued copy: embed fingerprint value ``v`` and verify the
    copy through the budgeted ladder (the
    :mod:`repro.flows.batch` worker loop, made persistent).
``inject``
    One job per (netlist mutator, trial): clone the design, inject the
    fault, push the mutant through the full pipeline and classify the
    outcome (the :mod:`repro.faultinject` campaign, made persistent).
``inject-text``
    One job per (text corruptor, trial) over the design's serialized
    Verilog.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import hashing
from ..errors import ReproError
from ..netlist.circuit import Circuit

#: Supported job kinds, in display order.
JOB_KINDS: Tuple[str, ...] = ("fingerprint", "inject", "inject-text")

#: ``--overwrite`` policies accepted by the scheduler / store.
OVERWRITE_POLICIES: Tuple[str, ...] = ("none", "failed", "all")


class CampaignError(ReproError, ValueError):
    """Raised for malformed specs, DB mismatches, and scheduler misuse."""


@dataclass(frozen=True)
class Job:
    """One expanded unit of campaign work.

    ``job_id`` is a content hash of the job's coordinates (kind, design,
    canonical params, spec seed) — never of execution state — so the same
    spec always expands to the same ids and a result DB can be joined
    against a re-expansion from scratch.
    """

    job_id: str
    design: str
    kind: str
    params: Dict[str, Any]
    seed: str  # derived seed key (repro.seeds.derive_seed)


@dataclass(frozen=True)
class CampaignSpec:
    """What a campaign runs; serialized verbatim into the result DB.

    Attributes:
        kind: Job kind (one of :data:`JOB_KINDS`).
        designs: Design sources — file paths (``.v`` / ``.blif``),
            ``bench:<name>`` suite circuits, or ``db:<name>`` for designs
            serialized into the result DB by the API facade.
        n_copies: ``fingerprint`` kind — distinct copies per design.
        trials: ``inject`` kinds — trials per (design, injector).
        injectors: ``inject`` kinds — injector names to run (``None``
            means every registered mutator/corruptor).
        seed: Campaign base seed; every job derives its own stream from
            it via :func:`repro.seeds.derive_seed`.
    """

    kind: str = "fingerprint"
    designs: Tuple[str, ...] = ()
    n_copies: int = 8
    trials: int = 1
    injectors: Optional[Tuple[str, ...]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise CampaignError(
                f"unknown job kind {self.kind!r} (valid: {', '.join(JOB_KINDS)})",
                stage="campaign",
            )
        if not self.designs:
            raise CampaignError("a campaign needs at least one design",
                                stage="campaign")
        object.__setattr__(self, "designs", tuple(self.designs))
        if self.injectors is not None:
            object.__setattr__(self, "injectors", tuple(self.injectors))
        if self.kind == "fingerprint" and self.n_copies <= 0:
            raise CampaignError("n_copies must be positive", stage="campaign")
        if self.kind != "fingerprint" and self.trials <= 0:
            raise CampaignError("trials must be positive", stage="campaign")

    def to_json(self) -> str:
        """Canonical JSON form (stored in the DB, compared on resume)."""
        payload = {
            "kind": self.kind,
            "designs": list(self.designs),
            "n_copies": self.n_copies,
            "trials": self.trials,
            "injectors": None if self.injectors is None else list(self.injectors),
            "seed": self.seed,
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"corrupt campaign spec in DB: {exc}",
                                stage="campaign") from exc
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise CampaignError(
                f"campaign spec has unknown field(s) {', '.join(unknown)} — "
                "written by a newer version?", stage="campaign",
            )
        payload["designs"] = tuple(payload.get("designs", ()))
        if payload.get("injectors") is not None:
            payload["injectors"] = tuple(payload["injectors"])
        return cls(**payload)


def job_id_for(kind: str, design: str, params: Mapping[str, Any], seed: int) -> str:
    """Stable 16-hex-char id for one job coordinate.

    Delegates to :func:`repro.hashing.job_id_for` (byte-compatible with
    the historical inline form, pinned by test), so campaign ids share
    the repo-wide content-hashing conventions.
    """
    return hashing.job_id_for(kind, design, params, seed)


def resolve_design(source: str, db_verilog: Optional[Mapping[str, str]] = None) -> Circuit:
    """Load one design source (``bench:``, ``db:``, or a file path)."""
    if source.startswith("bench:"):
        from ..bench import build_benchmark

        try:
            return build_benchmark(source[len("bench:"):])
        except KeyError as exc:
            raise CampaignError(f"unknown bench design {source!r}",
                                stage="campaign") from exc
    if source.startswith("db:"):
        name = source[len("db:"):]
        text = (db_verilog or {}).get(name)
        if text is None:
            raise CampaignError(
                f"design {source!r} is not stored in the campaign DB",
                stage="campaign",
            )
        from ..netlist.verilog import parse_verilog

        return parse_verilog(text)
    from ..api import load_circuit

    return load_circuit(source)


@dataclass(frozen=True)
class ResolvedDesign:
    """One loaded spec design together with the source it came from."""

    source: str
    circuit: Circuit


def resolve_designs(
    spec: CampaignSpec, db_verilog: Optional[Mapping[str, str]] = None
) -> "Dict[str, ResolvedDesign]":
    """Load every spec design, keyed by circuit name (insertion-ordered).

    Raises :class:`CampaignError` when two sources collapse onto the same
    circuit name — job rows are keyed by design name, so a collision
    would silently merge two different designs' campaigns.
    """
    designs: Dict[str, ResolvedDesign] = {}
    for source in spec.designs:
        circuit = resolve_design(source, db_verilog)
        circuit.validate()
        if circuit.name in designs:
            raise CampaignError(
                f"design name {circuit.name!r} appears twice "
                f"({designs[circuit.name].source!r} and {source!r})",
                stage="campaign", design=circuit.name,
            )
        designs[circuit.name] = ResolvedDesign(source, circuit)
    return designs


def expand_jobs(
    spec: CampaignSpec, designs: Mapping[str, Circuit]
) -> List[Job]:
    """Expand a spec into its job rows — a pure, order-stable function.

    ``fingerprint`` expansion needs each design's location catalog to
    know the fingerprint space (the value selection of
    :func:`repro.flows.batch.select_values` is reused verbatim, so a
    campaign issues exactly the values a one-shot batch would).
    """
    from ..seeds import derive_seed

    jobs: List[Job] = []
    if spec.kind == "fingerprint":
        from ..fingerprint.capacity import FingerprintCodec
        from ..fingerprint.locations import find_locations
        from ..flows.batch import select_values

        for name, circuit in designs.items():
            codec = FingerprintCodec(find_locations(circuit))
            values = select_values(codec.combinations, spec.n_copies, spec.seed)
            for value in values:
                params = {"value": value}
                jobs.append(Job(
                    job_id=job_id_for(spec.kind, name, params, spec.seed),
                    design=name,
                    kind=spec.kind,
                    params=params,
                    seed=derive_seed(spec.seed, name, "fingerprint", value),
                ))
        return jobs

    injector_names = _injector_names(spec)
    for name in designs:
        for injector in injector_names:
            for trial in range(spec.trials):
                params = {"injector": injector, "trial": trial}
                jobs.append(Job(
                    job_id=job_id_for(spec.kind, name, params, spec.seed),
                    design=name,
                    kind=spec.kind,
                    params=params,
                    seed=derive_seed(spec.seed, name, injector, trial),
                ))
    return jobs


def _injector_names(spec: CampaignSpec) -> Sequence[str]:
    """The injector grid for the spec's kind, validated against the registry."""
    from ..faultinject import ALL_CORRUPTORS, ALL_MUTATORS

    registry = ALL_MUTATORS if spec.kind == "inject" else ALL_CORRUPTORS
    known = [injector.name for injector in registry]
    if spec.injectors is None:
        return known
    unknown = sorted(set(spec.injectors) - set(known))
    if unknown:
        raise CampaignError(
            f"unknown injector(s) for kind {spec.kind!r}: {', '.join(unknown)} "
            f"(valid: {', '.join(known)})", stage="campaign",
        )
    return list(spec.injectors)


__all__ = [
    "CampaignError",
    "CampaignSpec",
    "JOB_KINDS",
    "Job",
    "OVERWRITE_POLICIES",
    "ResolvedDesign",
    "expand_jobs",
    "job_id_for",
    "resolve_design",
    "resolve_designs",
]
