"""Campaign job executors — the code that runs one job row anywhere.

One payload dict goes in (job coordinates + attempt + timeout), one result
dict comes out (``status`` ∈ ``done``/``error``/``timeout`` plus verdict
or diagnostics).  The same :func:`execute_payload` runs in three places:

* in-process, for serial campaigns (``jobs=1``);
* inside ``ProcessPoolExecutor`` workers via :func:`execute_payload_pooled`,
  which additionally ships the worker's telemetry spans/metrics back with
  the result;
* under :func:`~repro.campaign.timeouts.run_with_timeout`, always, so a
  hung job surfaces as a ``timeout`` result instead of wedging its worker.

Job kinds delegate to the canonical per-unit functions of the flows they
persist — :func:`repro.flows.batch.verify_one_value` for ``fingerprint``
jobs, :func:`repro.faultinject.run_one_injection` /
:func:`repro.faultinject.run_one_corruption` for the inject kinds — so a
campaign job's verdict is bit-identical to what the one-shot flow would
have recorded for the same coordinate.

Fault hooks (test-only, env-gated): ``REPRO_CAMPAIGN_CRASH_JOBS`` makes a
pool worker die with ``os._exit`` on matching job ids (exercising crash
quarantine), ``REPRO_CAMPAIGN_HANG_JOBS`` makes matching jobs spin past
their deadline (exercising timeout quarantine).  Both accept
``job_id[:n]`` entries, firing only while the job's attempt ordinal is
below ``n`` (no ``:n`` means always).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from typing import Any, Callable, Dict, Optional, Tuple

from .. import telemetry
from ..flows.ladder import LadderConfig
from ..netlist.circuit import Circuit
from .spec import CampaignError
from .timeouts import JobTimeoutError, run_with_timeout

# Per-process campaign context: designs, spec knobs, lazily-built
# per-design state (catalog/codec/CEC session for fingerprint jobs,
# serialized text for inject-text jobs).
_CONTEXT: Dict[str, Any] = {}


def set_context(
    designs: Dict[str, Circuit],
    kind: str,
    seed: int,
    ladder: Optional[LadderConfig],
    measure_overheads: bool,
) -> None:
    """Install the campaign context in this process (serial or worker).

    Also activates the artifact store when ``REPRO_STORE_DIR`` is set, so
    every job of a campaign (and every campaign sharing that directory)
    reuses the per-design compiled IR, base CNF, location catalog and
    warm CEC session instead of rebuilding them per process.
    """
    from ..store import ensure_default_store

    ensure_default_store()
    _CONTEXT.clear()
    _CONTEXT.update(
        designs=designs,
        kind=kind,
        seed=seed,
        ladder=ladder,
        measure=measure_overheads,
        states={},
        texts={},
    )


def init_worker(
    designs: Dict[str, Circuit],
    kind: str,
    seed: int,
    ladder: Optional[LadderConfig],
    measure_overheads: bool,
    telemetry_flags: Tuple[bool, bool] = (False, False),
) -> None:
    """Pool initializer: reset fork-inherited telemetry, then set context.

    Mirrors the batch flow's worker bootstrap — under the fork start
    method workers inherit the parent's live tracer stack (the open
    ``campaign.run`` span) and registry, which must be cleared or worker
    spans nest under an unreachable ghost and never drain.
    """
    trace_on, metrics_on = telemetry_flags
    telemetry.disable()
    telemetry.get_tracer().reset()
    telemetry.get_registry().reset()
    if trace_on or metrics_on:
        telemetry.enable(trace=trace_on, metrics=metrics_on)
    set_context(designs, kind, seed, ladder, measure_overheads)


def _design(name: str) -> Circuit:
    try:
        return _CONTEXT["designs"][name]
    except KeyError:
        raise CampaignError(
            f"worker has no design {name!r} in its campaign context",
            stage="campaign", design=name,
        ) from None


def _fingerprint_state(name: str) -> Dict[str, object]:
    states: Dict[str, Dict[str, object]] = _CONTEXT["states"]
    if name not in states:
        from ..flows.batch import build_worker_state

        states[name] = build_worker_state(
            _design(name), None, _CONTEXT["ladder"], _CONTEXT["measure"]
        )
    return states[name]


def _design_text(name: str) -> str:
    texts: Dict[str, str] = _CONTEXT["texts"]
    if name not in texts:
        from ..netlist.verilog import write_verilog

        texts[name] = write_verilog(_design(name))
    return texts[name]


def _run_fingerprint(design: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..flows.batch import verify_one_value

    record = verify_one_value(_fingerprint_state(design), int(params["value"]))
    payload = asdict(record)
    # Wall-clock time is execution state, not a verdict: dropping it keeps
    # stored verdicts a pure function of the job coordinates, so a resumed
    # campaign's rows compare bit-identical to an uninterrupted run's.
    # (Timing still lands in the job row's own `seconds` column.)
    payload.pop("seconds", None)
    return payload


def _run_inject(design: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..faultinject import ALL_MUTATORS, run_one_injection

    mutators = {mutator.name: mutator for mutator in ALL_MUTATORS}
    try:
        mutator = mutators[params["injector"]]
    except KeyError:
        raise CampaignError(
            f"unknown mutator {params['injector']!r}", stage="campaign"
        ) from None
    record = run_one_injection(
        _design(design), mutator, int(params["trial"]),
        seed=_CONTEXT["seed"], ladder=_CONTEXT["ladder"],
    )
    return record.as_dict()


def _run_inject_text(design: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..faultinject import ALL_CORRUPTORS, run_one_corruption
    from ..netlist.verilog import parse_verilog

    corruptors = {corruptor.name: corruptor for corruptor in ALL_CORRUPTORS}
    try:
        corruptor = corruptors[params["injector"]]
    except KeyError:
        raise CampaignError(
            f"unknown corruptor {params['injector']!r}", stage="campaign"
        ) from None
    record = run_one_corruption(
        design, _design_text(design), corruptor, int(params["trial"]),
        parser=parse_verilog, seed=_CONTEXT["seed"],
    )
    return record.as_dict()


_EXECUTORS: Dict[str, Callable[[str, Dict[str, Any]], Dict[str, Any]]] = {
    "fingerprint": _run_fingerprint,
    "inject": _run_inject,
    "inject-text": _run_inject_text,
}


def _hook_matches(env_var: str, job_id: str, attempt: int) -> bool:
    """Parse a ``job_id[:n],...`` fault-hook env var and test this job."""
    raw = os.environ.get(env_var)
    if not raw:
        return False
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        target, _, bound = entry.partition(":")
        if target != job_id:
            continue
        if not bound or attempt < int(bound):
            return True
    return False


def _hang() -> None:
    """Busy-spin (interruptible by SIGALRM, abandonable by the thread
    fallback) until something kills us — the deliberately hung job."""
    deadline = time.monotonic() + 3600.0
    while time.monotonic() < deadline:
        time.sleep(0.01)


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job in the already-installed campaign context.

    Never raises for job-level problems: errors and timeouts come back as
    result statuses so the scheduler can apply its retry/quarantine
    policy uniformly across serial and pooled execution.
    """
    from ..envelope import cache_delta
    from ..store.core import active_store

    job_id = payload["job_id"]
    kind = payload["kind"]
    executor = _EXECUTORS.get(kind)
    if executor is None:
        raise CampaignError(f"unknown job kind {kind!r}", stage="campaign")
    hang = _hook_matches(
        "REPRO_CAMPAIGN_HANG_JOBS", job_id, payload.get("attempt", 0)
    )
    store = active_store()
    cache_before = None if store is None else store.cache_snapshot()
    start = time.perf_counter()
    result: Dict[str, Any] = {
        "job_id": job_id,
        "pid": os.getpid(),
        "verdict": None,
        "error": None,
        "error_type": None,
        "cache": None,
    }
    with telemetry.span("campaign.job", job_id=job_id, kind=kind,
                        design=payload["design"]) as job_span:
        try:
            verdict = run_with_timeout(
                (_hang if hang else
                 lambda: executor(payload["design"], payload["params"])),
                payload.get("timeout_s"),
            )
            result["status"] = "done"
            result["verdict"] = verdict
        except JobTimeoutError as exc:
            result["status"] = "timeout"
            result["error"] = str(exc)
            result["error_type"] = type(exc).__name__
        except Exception as exc:  # noqa: BLE001 — classified, not swallowed
            result["status"] = "error"
            result["error"] = str(exc) or type(exc).__name__
            result["error_type"] = type(exc).__name__
        job_span.set(status=result["status"])
    result["seconds"] = time.perf_counter() - start
    if cache_before is not None:
        # Per-job artifact-store delta: what *this* job hit or recomputed.
        # The scheduler persists it with the job row and `campaign report`
        # aggregates the deltas into fleet-level cache metrics.
        result["cache"] = cache_delta(cache_before, store.cache_snapshot())
    telemetry.count(f"campaign.job_{result['status']}")
    return result


def execute_payload_pooled(
    payload: Dict[str, Any],
) -> Dict[str, Any]:
    """Pool-worker task: run the job, attach drained telemetry, crash hooks.

    The crash hook lives here (not in :func:`execute_payload`) so a
    serial campaign can never ``os._exit`` the caller's process.
    """
    if _hook_matches(
        "REPRO_CAMPAIGN_CRASH_JOBS", payload["job_id"], payload.get("attempt", 0)
    ):
        os._exit(3)
    result = execute_payload(payload)
    spans = telemetry.drain_spans() if telemetry.tracing_enabled() else []
    pid = os.getpid()
    for span_payload in spans:
        span_payload.setdefault("attrs", {})["worker"] = pid
    result["spans"] = spans
    result["metrics"] = (
        telemetry.drain_metrics() if telemetry.metrics_enabled() else {}
    )
    return result


__all__ = [
    "execute_payload",
    "execute_payload_pooled",
    "init_worker",
    "set_context",
]
