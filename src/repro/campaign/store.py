"""SQLite-backed campaign result store (stdlib ``sqlite3``, WAL mode).

One database file holds everything a campaign accumulates — the spec it
was expanded from, the serialized designs it ran over, every job row with
its verdict, and an append-only event ledger of retries, timeouts, and
worker crashes.  The schema is versioned (:data:`SCHEMA_VERSION`); opening
a DB written by a different schema fails loudly instead of misreading it.

Concurrency model: only the scheduler process writes (workers hand results
back through the process pool), so there is exactly one writer.  WAL mode
still matters — it makes ``campaign status`` / ``campaign report`` from a
second process safe while a run is in flight, and it keeps the main DB
file consistent if the scheduler is SIGKILLed mid-transaction, which is
precisely the crash-resume scenario this engine exists for.

Job lifecycle::

    pending ──run──> running ──ok────────────────> done
                        │ typed error, retries left ──> pending (retry)
                        │ typed error, exhausted ─────> failed
                        │ timeout/crash, < quarantine ─> pending (retry)
                        └ timeout/crash, quarantined ──> faulty

``done`` / ``failed`` / ``faulty`` are terminal; ``running`` rows found
when a DB is reopened belonged to a killed scheduler and are swept back
to ``pending`` (their attempt counters survive).
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .spec import OVERWRITE_POLICIES, CampaignError, CampaignSpec, Job

SCHEMA_VERSION = 1

#: Job states a finished campaign leaves behind.
TERMINAL_STATES: Tuple[str, ...] = ("done", "failed", "faulty")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS designs (
    name    TEXT PRIMARY KEY,
    source  TEXT NOT NULL,
    verilog TEXT
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id     TEXT PRIMARY KEY,
    design     TEXT NOT NULL,
    kind       TEXT NOT NULL,
    params     TEXT NOT NULL,
    seed       TEXT NOT NULL,
    status     TEXT NOT NULL DEFAULT 'pending',
    attempts   INTEGER NOT NULL DEFAULT 0,
    crashes    INTEGER NOT NULL DEFAULT 0,
    verdict    TEXT,
    error      TEXT,
    error_type TEXT,
    seconds    REAL,
    worker     INTEGER,
    updated_at REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);
CREATE INDEX IF NOT EXISTS idx_jobs_design ON jobs(design);
CREATE TABLE IF NOT EXISTS events (
    event_id INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id   TEXT NOT NULL,
    kind     TEXT NOT NULL,
    detail   TEXT,
    at       REAL NOT NULL
);
"""


@dataclass(frozen=True)
class JobRow:
    """One persisted job row (a read-only view of the ``jobs`` table)."""

    job_id: str
    design: str
    kind: str
    params: Dict[str, Any]
    seed: str
    status: str
    attempts: int
    crashes: int
    verdict: Optional[Dict[str, Any]]
    error: Optional[str]
    error_type: Optional[str]
    seconds: Optional[float]
    #: Per-job artifact-store delta (envelope ``cache`` shape) when the
    #: run had an active store; ``None`` otherwise.
    cache: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES


class JobStore:
    """Single-writer persistence layer over one campaign database."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = sqlite3.connect(path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        # WAL survives a killed writer with at most the in-flight
        # transaction lost; NORMAL sync is the documented WAL pairing
        # (durable against process crash, which is our failure model).
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
        self._migrate_columns()
        self._check_schema()

    # ------------------------------------------------------------------ #
    # meta / spec
    # ------------------------------------------------------------------ #

    def _migrate_columns(self) -> None:
        """Additive column migrations (backward- and forward-compatible).

        Guarded by ``PRAGMA table_info`` rather than a schema-version
        bump: old builds ignore the extra column, new builds reading an
        old DB add it in place, so mixed-version fleets keep working.
        """
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(jobs)")
        }
        if "cache" not in existing:
            with self._conn:
                self._conn.execute("ALTER TABLE jobs ADD COLUMN cache TEXT")

    def _check_schema(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            with self._conn:
                self._conn.execute(
                    "INSERT INTO meta(key, value) VALUES('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            return
        found = int(row["value"])
        if found != SCHEMA_VERSION:
            raise CampaignError(
                f"campaign DB {self.path!r} has schema v{found}, "
                f"this build reads v{SCHEMA_VERSION}",
                stage="campaign",
            )

    def load_spec(self) -> Optional[CampaignSpec]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='spec'"
        ).fetchone()
        return None if row is None else CampaignSpec.from_json(row["value"])

    def bind_spec(self, spec: CampaignSpec) -> None:
        """Store the spec, or verify it matches the one already stored.

        A campaign DB belongs to exactly one spec; running a different
        spec against it would interleave two incompatible job grids, so
        that is an error rather than a merge.
        """
        stored = self.load_spec()
        if stored is None:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta(key, value) VALUES('spec', ?)",
                    (spec.to_json(),),
                )
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta(key, value) VALUES('created_at', ?)",
                    (str(time.time()),),
                )
        elif stored != spec:
            raise CampaignError(
                f"campaign DB {self.path!r} was created for a different spec; "
                "use `campaign resume` (stored spec), a fresh DB, or pass "
                "the identical spec",
                stage="campaign",
                detail={"stored": stored.to_json(), "given": spec.to_json()},
            )

    # ------------------------------------------------------------------ #
    # designs
    # ------------------------------------------------------------------ #

    def store_design(self, name: str, source: str,
                     verilog: Optional[str] = None) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO designs(name, source, verilog) "
                "VALUES(?, ?, ?)",
                (name, source, verilog),
            )

    def design_verilog(self) -> Dict[str, str]:
        """Designs serialized into the DB (``db:`` sources), name -> text."""
        rows = self._conn.execute(
            "SELECT name, verilog FROM designs WHERE verilog IS NOT NULL"
        ).fetchall()
        return {row["name"]: row["verilog"] for row in rows}

    def design_sources(self) -> Dict[str, str]:
        rows = self._conn.execute("SELECT name, source FROM designs").fetchall()
        return {row["name"]: row["source"] for row in rows}

    # ------------------------------------------------------------------ #
    # job rows
    # ------------------------------------------------------------------ #

    def insert_jobs(self, jobs: Sequence[Job]) -> int:
        """Add expanded jobs, ignoring ids already present.  Returns #new."""
        now = time.time()
        with self._conn:
            before = self._conn.total_changes
            self._conn.executemany(
                "INSERT OR IGNORE INTO jobs"
                "(job_id, design, kind, params, seed, status, updated_at) "
                "VALUES(?, ?, ?, ?, ?, 'pending', ?)",
                [
                    (job.job_id, job.design, job.kind,
                     json.dumps(job.params, sort_keys=True), job.seed, now)
                    for job in jobs
                ],
            )
            return self._conn.total_changes - before

    def sweep_stale_running(self) -> int:
        """Reset ``running`` rows left by a killed scheduler to ``pending``."""
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET status='pending', worker=NULL, updated_at=? "
                "WHERE status='running'",
                (time.time(),),
            )
            return cursor.rowcount

    def apply_overwrite(self, policy: str) -> int:
        """Re-open terminal rows per the overwrite policy.  Returns #reset.

        ``none``
            Keep every terminal verdict (pure resume).
        ``failed``
            Re-open ``failed`` and ``faulty`` rows, clearing their attempt
            and crash counters — "try the broken ones again".
        ``all``
            Re-open everything; verdicts are discarded and the whole
            campaign re-executes.
        """
        if policy not in OVERWRITE_POLICIES:
            raise CampaignError(
                f"unknown overwrite policy {policy!r} "
                f"(valid: {', '.join(OVERWRITE_POLICIES)})",
                stage="campaign",
            )
        if policy == "none":
            return 0
        where = ("WHERE status IN ('failed', 'faulty')"
                 if policy == "failed" else "")
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET status='pending', attempts=0, crashes=0, "
                "verdict=NULL, error=NULL, error_type=NULL, seconds=NULL, "
                f"cache=NULL, worker=NULL, updated_at=? {where}",
                (time.time(),),
            )
            return cursor.rowcount

    def pending_jobs(self) -> List[JobRow]:
        rows = self._conn.execute(
            "SELECT * FROM jobs WHERE status='pending' ORDER BY job_id"
        ).fetchall()
        return [self._to_row(row) for row in rows]

    def mark_running(self, job_ids: Iterable[str], worker: Optional[int] = None) -> None:
        now = time.time()
        with self._conn:
            self._conn.executemany(
                "UPDATE jobs SET status='running', worker=?, updated_at=? "
                "WHERE job_id=?",
                [(worker, now, job_id) for job_id in job_ids],
            )

    def mark_pending(self, job_ids: Iterable[str]) -> None:
        """Hand in-flight jobs back (graceful shutdown, pool rebuild)."""
        now = time.time()
        with self._conn:
            self._conn.executemany(
                "UPDATE jobs SET status='pending', worker=NULL, updated_at=? "
                "WHERE job_id=?",
                [(now, job_id) for job_id in job_ids],
            )

    def record_attempt(self, job_id: str) -> int:
        """Bump the attempt counter; returns the new attempt ordinal."""
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET attempts = attempts + 1, updated_at=? "
                "WHERE job_id=?",
                (time.time(), job_id),
            )
        row = self._conn.execute(
            "SELECT attempts FROM jobs WHERE job_id=?", (job_id,)
        ).fetchone()
        if row is None:
            raise CampaignError(f"unknown job id {job_id!r}", stage="campaign")
        return int(row["attempts"])

    def record_crash(self, job_id: str) -> int:
        """Bump the crash counter (worker death / hang); returns new count."""
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET crashes = crashes + 1, updated_at=? "
                "WHERE job_id=?",
                (time.time(), job_id),
            )
        row = self._conn.execute(
            "SELECT crashes FROM jobs WHERE job_id=?", (job_id,)
        ).fetchone()
        if row is None:
            raise CampaignError(f"unknown job id {job_id!r}", stage="campaign")
        return int(row["crashes"])

    def record_result(
        self,
        job_id: str,
        status: str,
        *,
        verdict: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        error_type: Optional[str] = None,
        seconds: Optional[float] = None,
        worker: Optional[int] = None,
        cache: Optional[Dict[str, Any]] = None,
    ) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET status=?, verdict=?, error=?, error_type=?, "
                "seconds=?, worker=?, cache=?, updated_at=? WHERE job_id=?",
                (
                    status,
                    None if verdict is None else json.dumps(verdict, sort_keys=True),
                    error, error_type, seconds, worker,
                    None if cache is None else json.dumps(cache, sort_keys=True),
                    time.time(), job_id,
                ),
            )

    def record_event(self, job_id: str, kind: str, detail: str = "") -> None:
        """Append to the retry/crash ledger (``retry``/``timeout``/``crash``/...)."""
        with self._conn:
            self._conn.execute(
                "INSERT INTO events(job_id, kind, detail, at) VALUES(?, ?, ?, ?)",
                (job_id, kind, detail, time.time()),
            )

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def counts(self) -> Dict[str, int]:
        rows = self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
        ).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def event_counts(self) -> Dict[str, int]:
        rows = self._conn.execute(
            "SELECT kind, COUNT(*) AS n FROM events GROUP BY kind"
        ).fetchall()
        return {row["kind"]: row["n"] for row in rows}

    def events(self, limit: int = 50) -> List[Dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT job_id, kind, detail, at FROM events "
            "ORDER BY event_id DESC LIMIT ?", (limit,)
        ).fetchall()
        return [dict(row) for row in rows]

    def all_jobs(self) -> List[JobRow]:
        rows = self._conn.execute(
            "SELECT * FROM jobs ORDER BY job_id"
        ).fetchall()
        return [self._to_row(row) for row in rows]

    def job(self, job_id: str) -> Optional[JobRow]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id=?", (job_id,)
        ).fetchone()
        return None if row is None else self._to_row(row)

    @staticmethod
    def _to_row(row: sqlite3.Row) -> JobRow:
        verdict = row["verdict"]
        cache = row["cache"]
        return JobRow(
            job_id=row["job_id"],
            design=row["design"],
            kind=row["kind"],
            params=json.loads(row["params"]),
            seed=row["seed"],
            status=row["status"],
            attempts=row["attempts"],
            crashes=row["crashes"],
            verdict=None if verdict is None else json.loads(verdict),
            error=row["error"],
            error_type=row["error_type"],
            seconds=row["seconds"],
            cache=None if cache is None else json.loads(cache),
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Checkpoint the WAL into the main DB file."""
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        try:
            self.flush()
        except sqlite3.Error:
            pass
        self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["JobRow", "JobStore", "SCHEMA_VERSION", "TERMINAL_STATES"]
