"""Persistent campaign engine: SQLite-backed job store with resume & retry.

The in-memory flows (:mod:`repro.flows.batch`, :mod:`repro.faultinject`)
answer "run this now and give me the result"; this package answers "run
this fleet of jobs over hours, survive crashes, and let me come back".
A declarative :class:`CampaignSpec` expands deterministically into
content-addressed job rows inside a SQLite database
(:class:`~repro.campaign.store.JobStore`); the scheduler
(:func:`run_campaign`) executes whatever is still pending with per-job
timeouts, bounded retries, and crash quarantine; and the reporter
(:func:`build_report`) aggregates the DB into JSON/HTML fleet reports.

Both front-ends stay bit-compatible: campaign jobs call the same
per-unit functions (:func:`repro.flows.batch.verify_one_value`,
:func:`repro.faultinject.run_one_injection` / ``run_one_corruption``)
the one-shot flows use, so persisting a sweep never changes its verdicts.
"""

from .report import build_report, render_html, write_report
from .scheduler import (
    CampaignOptions,
    CampaignSummary,
    GracefulStop,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from .spec import (
    JOB_KINDS,
    OVERWRITE_POLICIES,
    CampaignError,
    CampaignSpec,
    Job,
    expand_jobs,
    job_id_for,
    resolve_design,
    resolve_designs,
)
from .store import SCHEMA_VERSION, TERMINAL_STATES, JobRow, JobStore
from .timeouts import JobTimeoutError, run_with_timeout

__all__ = [
    "CampaignError",
    "CampaignOptions",
    "CampaignSpec",
    "CampaignSummary",
    "GracefulStop",
    "JOB_KINDS",
    "Job",
    "JobRow",
    "JobStore",
    "JobTimeoutError",
    "OVERWRITE_POLICIES",
    "SCHEMA_VERSION",
    "TERMINAL_STATES",
    "build_report",
    "campaign_status",
    "expand_jobs",
    "job_id_for",
    "render_html",
    "resolve_design",
    "resolve_designs",
    "resume_campaign",
    "run_campaign",
    "run_with_timeout",
    "write_report",
]
