"""Fleet reporting: aggregate a campaign DB into JSON and HTML reports.

:func:`build_report` is a pure read of the result database — it can run
against a live campaign (WAL readers don't block the scheduler) or a
finished one, from any process.  The JSON payload is the contract; the
HTML view is a self-contained single file rendered from the same dict,
in the spirit of DAVOS's Reportbuilder.

Report sections:

``totals``
    Job counts per lifecycle state, completion/clean flags.
``throughput``
    Executed-job seconds, wall-rate, per-kind timing percentiles.
``cache``
    Fleet-level artifact-store metrics summed from the per-job store
    hit/miss deltas that job executors attach to their results.
``fingerprint``
    Per-design verification breakdown for ``fingerprint`` campaigns:
    verdict counts, tier histogram, budget-degradation count, overheads.
``injectors``
    Per-injector robustness matrix for ``inject`` / ``inject-text``
    campaigns: outcome histogram plus the acceptable/violation split.
``ledger``
    The retry / timeout / crash event histogram and the most recent
    entries — the campaign's incident log.
"""

from __future__ import annotations

import html
import json
import os
from typing import Any, Dict, List, Optional, Sequence

from ..telemetry.metrics import safe_rate
from .store import JobRow, JobStore, TERMINAL_STATES


def _percentile(values: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile (no numpy dependency)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _fingerprint_section(rows: Sequence[JobRow]) -> Dict[str, Any]:
    by_design: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        if row.kind != "fingerprint" or row.verdict is None:
            continue
        entry = by_design.setdefault(row.design, {
            "copies": 0,
            "equivalent": 0,
            "proven": 0,
            "budget_degraded": 0,
            "tiers": {},
            "area_overheads": [],
        })
        verdict = row.verdict
        entry["copies"] += 1
        entry["equivalent"] += bool(verdict.get("equivalent"))
        entry["proven"] += bool(verdict.get("proven"))
        entry["budget_degraded"] += bool(verdict.get("budget_hit"))
        tier = verdict.get("tier", "?")
        entry["tiers"][tier] = entry["tiers"].get(tier, 0) + 1
        if verdict.get("area_overhead") is not None:
            entry["area_overheads"].append(verdict["area_overhead"])
    for entry in by_design.values():
        overheads = entry.pop("area_overheads")
        entry["mean_area_overhead"] = (
            sum(overheads) / len(overheads) if overheads else None
        )
    return by_design


def _injector_section(rows: Sequence[JobRow]) -> Dict[str, Dict[str, Any]]:
    """The robustness matrix: injector -> outcome histogram + verdict."""
    matrix: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        if row.kind == "fingerprint" or row.verdict is None:
            continue
        injector = row.params.get("injector", "?")
        entry = matrix.setdefault(injector, {
            "trials": 0,
            "outcomes": {},
            "acceptable": 0,
            "violations": 0,
            "mismatches_detected": 0,
        })
        verdict = row.verdict
        entry["trials"] += 1
        outcome = verdict.get("outcome", "?")
        entry["outcomes"][outcome] = entry["outcomes"].get(outcome, 0) + 1
        if verdict.get("acceptable"):
            entry["acceptable"] += 1
        else:
            entry["violations"] += 1
        entry["mismatches_detected"] += bool(verdict.get("mismatch_detected"))
    return matrix


def _cache_section(rows: Sequence[JobRow]) -> Dict[str, Any]:
    """Fleet-level artifact-store metrics from per-job cache deltas.

    Each ``done`` job row may carry the store counter growth its own
    execution caused (see :func:`repro.campaign.jobs.execute_payload`).
    Summing the deltas gives exactly the fleet's cache traffic even
    across worker processes, resumed runs, and mixed campaigns — a warm
    job is one whose delta recomputed nothing (hits without misses).
    """
    section: Dict[str, Any] = {
        "jobs_with_cache": 0,
        "hits": 0,
        "misses": 0,
        "hit_rate": None,
        "warm_jobs": 0,
        "counters": {},
    }
    counters: Dict[str, int] = {}
    for row in rows:
        delta = row.cache
        if delta is None:
            continue
        section["jobs_with_cache"] += 1
        hits = int(delta.get("hits", 0))
        misses = int(delta.get("misses", 0))
        section["hits"] += hits
        section["misses"] += misses
        if hits > 0 and misses == 0:
            section["warm_jobs"] += 1
        for key, value in delta.get("counters", {}).items():
            if key == "entries":
                continue
            counters[key] = counters.get(key, 0) + int(value)
    looked_up = section["hits"] + section["misses"]
    if looked_up:
        section["hit_rate"] = section["hits"] / looked_up
    section["counters"] = dict(sorted(counters.items()))
    return section


def _throughput_section(rows: Sequence[JobRow]) -> Dict[str, Any]:
    seconds = [row.seconds for row in rows
               if row.status == "done" and row.seconds is not None]
    total = sum(seconds)
    return {
        "jobs_timed": len(seconds),
        "job_seconds_total": total,
        "job_seconds_mean": safe_rate(total, len(seconds)),
        "job_seconds_p50": _percentile(seconds, 0.50),
        "job_seconds_p95": _percentile(seconds, 0.95),
    }


def build_report(db_path: str, recent_events: int = 50) -> Dict[str, Any]:
    """Aggregate one campaign DB into the JSON report payload."""
    with JobStore(db_path) as store:
        spec = store.load_spec()
        rows = store.all_jobs()
        counts = store.counts()
        event_counts = store.event_counts()
        events = store.events(limit=recent_events)
        sources = store.design_sources()
    n_jobs = len(rows)
    terminal = sum(counts.get(state, 0) for state in TERMINAL_STATES)
    failures = [
        {
            "job_id": row.job_id,
            "design": row.design,
            "params": row.params,
            "status": row.status,
            "attempts": row.attempts,
            "crashes": row.crashes,
            "error_type": row.error_type,
            "error": row.error,
        }
        for row in rows
        if row.status in ("failed", "faulty")
    ]
    return {
        "db_path": db_path,
        "spec": None if spec is None else json.loads(spec.to_json()),
        "designs": sources,
        "totals": {
            "n_jobs": n_jobs,
            "counts": counts,
            "terminal": terminal,
            "complete": n_jobs > 0 and terminal == n_jobs,
            "clean": not (counts.get("failed") or counts.get("faulty")),
        },
        "throughput": _throughput_section(rows),
        "cache": _cache_section(rows),
        "fingerprint": _fingerprint_section(rows),
        "injectors": _injector_section(rows),
        "failures": failures,
        "ledger": {
            "event_counts": event_counts,
            "recent": events,
        },
    }


# --------------------------------------------------------------------- #
# HTML rendering
# --------------------------------------------------------------------- #

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       color: #1a1a2e; }
h1 { border-bottom: 2px solid #16213e; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .8rem 0 1.4rem; }
th, td { border: 1px solid #cbd5e1; padding: .3rem .7rem; text-align: left; }
th { background: #f1f5f9; }
.ok { color: #15803d; font-weight: 600; }
.bad { color: #b91c1c; font-weight: 600; }
code { background: #f1f5f9; padding: .1rem .3rem; border-radius: 3px; }
"""


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(
            f"<td>{html.escape('' if cell is None else str(cell))}</td>"
            for cell in row
        ) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def render_html(report: Dict[str, Any]) -> str:
    """The JSON report as one self-contained HTML page."""
    totals = report["totals"]
    verdict = (
        '<span class="ok">CLEAN</span>' if totals["clean"]
        else '<span class="bad">FAILURES</span>'
    )
    progress = (
        '<span class="ok">complete</span>' if totals["complete"]
        else f'<span class="bad">{totals["terminal"]}/{totals["n_jobs"]} terminal</span>'
    )
    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>campaign report</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>Campaign report — <code>{html.escape(report['db_path'])}</code></h1>",
        f"<p>{progress} · {verdict}</p>",
        "<h2>Totals</h2>",
        _table(["state", "jobs"], sorted(totals["counts"].items())),
    ]
    throughput = report["throughput"]
    if throughput["jobs_timed"]:
        parts += [
            "<h2>Throughput</h2>",
            _table(
                ["jobs timed", "total s", "mean s", "p50 s", "p95 s"],
                [[
                    throughput["jobs_timed"],
                    f"{throughput['job_seconds_total']:.2f}",
                    f"{throughput['job_seconds_mean']:.3f}",
                    f"{throughput['job_seconds_p50']:.3f}",
                    f"{throughput['job_seconds_p95']:.3f}",
                ]],
            ),
        ]
    cache = report.get("cache") or {}
    if cache.get("jobs_with_cache"):
        hit_rate = cache["hit_rate"]
        parts += [
            "<h2>Artifact cache</h2>",
            _table(
                ["jobs with cache", "hits", "misses", "hit rate",
                 "warm jobs", "top counters"],
                [[
                    cache["jobs_with_cache"],
                    cache["hits"],
                    cache["misses"],
                    "-" if hit_rate is None else f"{hit_rate:.1%}",
                    cache["warm_jobs"],
                    ", ".join(
                        f"{k}={v}"
                        for k, v in list(cache["counters"].items())[:6]
                    ) or "-",
                ]],
            ),
        ]
    if report["fingerprint"]:
        rows = [
            [design, e["copies"], e["equivalent"], e["proven"],
             e["budget_degraded"],
             ", ".join(f"{t}={n}" for t, n in sorted(e["tiers"].items())),
             ("-" if e["mean_area_overhead"] is None
              else f"{e['mean_area_overhead']:.2%}")]
            for design, e in sorted(report["fingerprint"].items())
        ]
        parts += [
            "<h2>Fingerprint verification</h2>",
            _table(
                ["design", "copies", "equivalent", "proven", "budget-degraded",
                 "tiers", "mean area overhead"],
                rows,
            ),
        ]
    if report["injectors"]:
        rows = [
            [injector, e["trials"],
             ", ".join(f"{o}={n}" for o, n in sorted(e["outcomes"].items())),
             e["acceptable"], e["violations"], e["mismatches_detected"]]
            for injector, e in sorted(report["injectors"].items())
        ]
        parts += [
            "<h2>Injector robustness matrix</h2>",
            _table(
                ["injector", "trials", "outcomes", "acceptable", "violations",
                 "mismatch detected"],
                rows,
            ),
        ]
    if report["failures"]:
        rows = [
            [f["job_id"], f["design"], json.dumps(f["params"]), f["status"],
             f["attempts"], f["crashes"], f["error_type"], f["error"]]
            for f in report["failures"]
        ]
        parts += [
            "<h2>Failures</h2>",
            _table(
                ["job", "design", "params", "status", "attempts", "crashes",
                 "error type", "error"],
                rows,
            ),
        ]
    ledger = report["ledger"]
    if ledger["event_counts"]:
        parts += [
            "<h2>Retry / crash ledger</h2>",
            _table(["event", "count"], sorted(ledger["event_counts"].items())),
            "<h3>Recent events</h3>",
            _table(
                ["job", "event", "detail"],
                [[e["job_id"], e["kind"], e["detail"]] for e in ledger["recent"]],
            ),
        ]
    parts.append("</body></html>")
    return "".join(parts)


def write_report(
    db_path: str,
    out_dir: str,
    recent_events: int = 50,
) -> Dict[str, str]:
    """Build and write ``report.json`` + ``report.html`` under ``out_dir``.

    Returns ``{"json": <path>, "html": <path>}``.
    """
    report = build_report(db_path, recent_events=recent_events)
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, "report.json")
    html_path = os.path.join(out_dir, "report.html")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(html_path, "w", encoding="utf-8") as handle:
        handle.write(render_html(report))
    return {"json": json_path, "html": html_path}


__all__ = ["build_report", "render_html", "write_report"]
