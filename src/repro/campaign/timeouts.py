"""Portable per-job wall-clock timeouts for campaign workers.

Campaign jobs run arbitrary pipeline work (SAT solving included), so a
pathological job could wedge its worker forever.  :func:`run_with_timeout`
caps one callable:

* On POSIX main threads it arms ``SIGALRM`` via ``signal.setitimer`` — the
  same mechanism as the pytest-timeout fallback from PR 1 — which
  *interrupts* the running Python code, so even a compute-bound job stops
  within one bytecode instruction of the deadline.  Any previously armed
  itimer (e.g. pytest-timeout's own per-test cap) is saved and re-armed
  with its remaining time afterwards, so nesting is safe.
* Everywhere else (Windows, non-main threads) it falls back to running
  the job in a daemon thread and joining with the deadline.  The verdict
  is just as reliable, but an abandoned job keeps its thread until it
  finishes on its own — acceptable for pool workers, which the scheduler
  quarantines and recycles.

Either way the caller sees a :class:`JobTimeoutError`, which the scheduler
treats like a worker crash: bounded retries, then quarantine.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from ..errors import ReproError


class JobTimeoutError(ReproError):
    """A job exceeded its wall-clock cap and was abandoned."""


def _sigalrm_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _run_with_sigalrm(fn: Callable[[], Any], seconds: float) -> Any:
    def _expired(signum: int, frame: object) -> None:
        raise JobTimeoutError(
            f"job exceeded its {seconds:g}s wall-clock cap", stage="campaign"
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    started = time.monotonic()
    previous_delay, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous_handler)
        if previous_delay > 0:
            # Re-arm the outer timer (pytest-timeout, a nested cap) with
            # whatever budget it has left; floor at 10ms so an already
            # expired outer timer still fires instead of disarming.
            elapsed = time.monotonic() - started
            signal.setitimer(
                signal.ITIMER_REAL, max(0.01, previous_delay - elapsed)
            )


def _run_in_thread(fn: Callable[[], Any], seconds: float) -> Any:
    outcome: List[Tuple[bool, Any]] = []

    def _target() -> None:
        try:
            outcome.append((True, fn()))
        except BaseException as exc:  # noqa: BLE001 — re-raised in caller
            outcome.append((False, exc))

    thread = threading.Thread(target=_target, daemon=True, name="campaign-job")
    thread.start()
    thread.join(seconds)
    if thread.is_alive():
        raise JobTimeoutError(
            f"job exceeded its {seconds:g}s wall-clock cap "
            "(thread fallback; worker thread abandoned)", stage="campaign",
        )
    ok, value = outcome[0]
    if ok:
        return value
    raise value


def run_with_timeout(
    fn: Callable[[], Any], seconds: Optional[float]
) -> Any:
    """Run ``fn()`` under a wall-clock cap; raise :class:`JobTimeoutError`.

    ``seconds`` of ``None`` or ``<= 0`` disables the cap entirely (no
    signal/thread overhead) — the campaign's "unlimited" spelling.
    """
    if seconds is None or seconds <= 0:
        return fn()
    if _sigalrm_usable():
        return _run_with_sigalrm(fn, seconds)
    return _run_in_thread(fn, seconds)


__all__ = ["JobTimeoutError", "run_with_timeout"]
