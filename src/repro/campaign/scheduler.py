"""The campaign scheduler: shard persisted jobs over workers, survive chaos.

:func:`run_campaign` is the engine behind ``repro-fp campaign run`` and
:func:`repro.api.campaign`.  Given a :class:`~repro.campaign.spec.CampaignSpec`
and a database path it:

1. binds the spec to the DB (first run stores it; later runs must match),
2. resolves and records the designs, expands the deterministic job grid,
   and inserts any job rows not already present (``INSERT OR IGNORE``),
3. sweeps ``running`` rows left behind by a killed scheduler back to
   ``pending`` and applies the ``--overwrite`` policy, and
4. executes everything still pending — serially or across a
   ``ProcessPoolExecutor`` — with per-job wall-clock timeouts, bounded
   retries with exponential backoff, and crash quarantine: a job whose
   worker dies (or which times out) :data:`quarantine_limit` times is
   marked ``faulty`` and never retried again, so one poisonous input
   cannot wedge an overnight sweep.

Because every completed job is committed to SQLite before the next one is
scheduled, *resume is free*: re-running the same spec against the same DB
executes only non-terminal jobs, a killed run continues where it stopped,
and a finished campaign is a no-op.  SIGINT/SIGTERM request a graceful
stop — in-flight results are flushed, unfinished jobs return to
``pending`` — so Ctrl-C loses at most the jobs that were mid-execution,
and not even those if their workers finish within the drain window.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from .. import telemetry
from ..flows.ladder import LadderConfig
from ..netlist.circuit import Circuit
from ..telemetry.metrics import safe_rate
from . import jobs as jobmod
from .spec import (
    CampaignError,
    CampaignSpec,
    expand_jobs,
    resolve_designs,
)
from .store import JobRow, JobStore, TERMINAL_STATES


@dataclass(frozen=True)
class CampaignOptions:
    """How a campaign executes (never part of job identity).

    Attributes:
        jobs: Worker processes (1 = serial, in-process).
        timeout_s: Per-job wall-clock cap (``None``/``<=0`` disables).
        retry_attempts: Re-executions allowed after a job's first failed
            attempt (DAVOS's ``retry_attempts``); exhausted -> ``failed``.
        quarantine_limit: Worker crashes / timeouts a job may cause
            before it is marked ``faulty`` and abandoned.
        backoff_s: Base of the exponential retry backoff
            (``backoff_s * 2**(attempt-1)`` seconds before re-dispatch).
        overwrite: Which terminal rows to re-open before running
            (``none`` / ``failed`` / ``all``).
        max_jobs: Execute at most this many job attempts this run, then
            stop gracefully (checkpointed interrupt; ``None`` = no cap).
        ladder: Verification-ladder tuning passed to job executors.
        measure_overheads: Record per-copy area/delay/power overheads
            (``fingerprint`` kind).
        drain_s: How long a graceful stop waits for in-flight workers
            before handing their jobs back to ``pending``.
    """

    jobs: int = 1
    timeout_s: Optional[float] = 300.0
    retry_attempts: int = 2
    quarantine_limit: int = 2
    backoff_s: float = 0.5
    overwrite: str = "none"
    max_jobs: Optional[int] = None
    ladder: Optional[LadderConfig] = None
    measure_overheads: bool = False
    drain_s: float = 30.0


@dataclass
class CampaignSummary:
    """What one scheduler invocation did and where the campaign stands."""

    db_path: str
    designs: List[str]
    counts: Dict[str, int] = field(default_factory=dict)
    n_jobs: int = 0
    inserted: int = 0
    executed: int = 0
    retried: int = 0
    timeouts: int = 0
    crashes: int = 0
    quarantined: int = 0
    wall_seconds: float = 0.0
    interrupted: bool = False
    jobs: int = 1

    @property
    def pending(self) -> int:
        return self.counts.get("pending", 0) + self.counts.get("running", 0)

    @property
    def complete(self) -> bool:
        """Every job row is in a terminal state."""
        return self.pending == 0

    @property
    def clean(self) -> bool:
        """No job ended ``failed`` or ``faulty``."""
        return not (self.counts.get("failed") or self.counts.get("faulty"))

    @property
    def jobs_per_sec(self) -> float:
        return safe_rate(self.executed, self.wall_seconds)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "db_path": self.db_path,
            "designs": self.designs,
            "counts": self.counts,
            "n_jobs": self.n_jobs,
            "inserted": self.inserted,
            "executed": self.executed,
            "retried": self.retried,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "quarantined": self.quarantined,
            "wall_seconds": self.wall_seconds,
            "jobs_per_sec": self.jobs_per_sec,
            "interrupted": self.interrupted,
            "complete": self.complete,
            "clean": self.clean,
            "jobs": self.jobs,
        }

    def summary(self) -> str:
        states = ", ".join(
            f"{key}={value}" for key, value in sorted(self.counts.items())
        ) or "no jobs"
        lines = [
            f"campaign {self.db_path}: {self.n_jobs} jobs ({states})",
            f"this run: {self.executed} executed in {self.wall_seconds:.2f}s "
            f"({self.jobs_per_sec:.2f} jobs/s) over {self.jobs} worker(s), "
            f"{self.retried} retried, {self.timeouts} timed out, "
            f"{self.crashes} worker crashes, {self.quarantined} quarantined",
        ]
        if self.interrupted:
            lines.append(
                f"interrupted: {self.pending} job(s) still pending — "
                "re-run `campaign resume` to continue"
            )
        return "\n".join(lines)


class GracefulStop:
    """SIGINT/SIGTERM -> a cooperative stop flag (restored on exit).

    Handlers are only installed on the main thread (the signal module
    refuses elsewhere); tests and embedders can call :meth:`request`
    directly, or pass ``on_attempt`` hooks that do.
    """

    def __init__(self) -> None:
        self.requested = False
        self._previous: Dict[int, Any] = {}

    def request(self, *_args: object) -> None:
        self.requested = True

    def __enter__(self) -> "GracefulStop":
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(signum, self.request)
                except (ValueError, OSError):  # pragma: no cover — exotic hosts
                    pass
        return self

    def __exit__(self, *exc_info: object) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()


def _backoff_delay(options: CampaignOptions, attempts: int) -> float:
    """Exponential backoff before re-dispatching attempt ``attempts + 1``."""
    if options.backoff_s <= 0:
        return 0.0
    return options.backoff_s * (2.0 ** max(0, attempts - 1))


def _payload(row: JobRow, attempt: int, options: CampaignOptions) -> Dict[str, Any]:
    return {
        "job_id": row.job_id,
        "design": row.design,
        "kind": row.kind,
        "params": row.params,
        "seed": row.seed,
        "attempt": attempt,
        "timeout_s": options.timeout_s,
    }


class _Run:
    """Mutable state for one scheduler invocation (shared by both modes)."""

    def __init__(self, store: JobStore, options: CampaignOptions,
                 summary: CampaignSummary, stop: GracefulStop) -> None:
        self.store = store
        self.options = options
        self.summary = summary
        self.stop = stop
        self.ready: Deque[JobRow] = deque()
        #: retry queue: (monotonic eligible-at, row)
        self.delayed: List[Tuple[float, JobRow]] = []
        #: job ids that were in flight when a worker pool died.  While any
        #: remain, the pooled loop runs one job at a time so the next
        #: crash identifies its culprit definitively (see _charge_crash).
        self.suspects: set = set()

    # -------------------------------------------------------------- #

    def budget_left(self) -> bool:
        if self.stop.requested:
            return False
        max_jobs = self.options.max_jobs
        return max_jobs is None or self.summary.executed < max_jobs

    def promote_delayed(self) -> None:
        now = time.monotonic()
        still: List[Tuple[float, JobRow]] = []
        for eligible_at, row in self.delayed:
            if eligible_at <= now:
                self.ready.append(row)
            else:
                still.append((eligible_at, row))
        self.delayed = still

    def requeue(self, row: JobRow, attempts: int, reason: str) -> None:
        """Hand a job back to pending and schedule its retry dispatch."""
        self.store.mark_pending([row.job_id])
        self.store.record_event(row.job_id, "retry", reason)
        self.summary.retried += 1
        telemetry.count("campaign.retries")
        delay = _backoff_delay(self.options, attempts)
        self.delayed.append((time.monotonic() + delay, row))

    def dispose(self, row: JobRow, attempts: int, result: Dict[str, Any]) -> None:
        """Fold one execution result into the store per the retry policy."""
        status = result["status"]
        if status == "done":
            self.store.record_result(
                row.job_id, "done",
                verdict=result["verdict"],
                seconds=result["seconds"],
                worker=result["pid"],
                cache=result.get("cache"),
            )
            telemetry.count("campaign.jobs_done")
            return
        if status == "timeout":
            self.summary.timeouts += 1
            telemetry.count("campaign.timeouts")
            crashes = self.store.record_crash(row.job_id)
            self.store.record_event(
                row.job_id, "timeout",
                f"attempt {attempts}: {result['error']}",
            )
            if crashes >= self.options.quarantine_limit:
                self.quarantine(row, result["error"], result["error_type"])
            else:
                self.requeue(row, attempts, f"timeout #{crashes}")
            return
        # status == "error"
        self.store.record_event(
            row.job_id, "error",
            f"attempt {attempts}: {result['error_type']}: {result['error']}",
        )
        if attempts <= self.options.retry_attempts:
            self.requeue(row, attempts, f"error: {result['error_type']}")
        else:
            self.store.record_result(
                row.job_id, "failed",
                error=result["error"],
                error_type=result["error_type"],
                seconds=result.get("seconds"),
                worker=result.get("pid"),
            )
            telemetry.count("campaign.jobs_failed")

    def quarantine(self, row: JobRow, error: Optional[str],
                   error_type: Optional[str]) -> None:
        self.suspects.discard(row.job_id)
        self.store.record_result(
            row.job_id, "faulty",
            error=error or "quarantined after repeated crashes",
            error_type=error_type or "WorkerCrash",
        )
        self.store.record_event(row.job_id, "quarantine", error or "")
        self.summary.quarantined += 1
        telemetry.count("campaign.quarantined")


def _run_serial(run: _Run, designs: Mapping[str, Circuit],
                spec: CampaignSpec) -> None:
    """In-process execution: one job at a time, stop-aware backoff sleeps."""
    jobmod.set_context(
        dict(designs), spec.kind, spec.seed,
        run.options.ladder, run.options.measure_overheads,
    )
    while True:
        run.promote_delayed()
        if not run.ready and run.delayed and run.budget_left():
            # Sleep toward the earliest retry, in small stop-aware steps.
            wake = min(eligible for eligible, _ in run.delayed)
            while time.monotonic() < wake and not run.stop.requested:
                time.sleep(min(0.05, max(0.0, wake - time.monotonic())))
            continue
        if not run.ready or not run.budget_left():
            break
        row = run.ready.popleft()
        run.store.mark_running([row.job_id])
        attempts = run.store.record_attempt(row.job_id)
        result = jobmod.execute_payload(
            _payload(row, attempts - 1, run.options)
        )
        run.summary.executed += 1
        telemetry.count("campaign.jobs_executed")
        run.dispose(row, attempts, result)
    # Anything still queued goes back to pending for the next resume.
    leftover = [row.job_id for row in run.ready] + [
        row.job_id for _, row in run.delayed
    ]
    if leftover:
        run.store.mark_pending(leftover)


def _adopt_worker_telemetry(result: Dict[str, Any]) -> None:
    spans = result.get("spans")
    if spans:
        telemetry.get_tracer().adopt(spans)
    metrics = result.get("metrics")
    if metrics:
        telemetry.get_registry().merge(metrics)


def _run_pooled(run: _Run, designs: Mapping[str, Circuit],
                spec: CampaignSpec) -> None:
    """Pool execution: windowed submission, crash handling, graceful drain."""
    options = run.options
    # Fresh clones drop per-version caches before pickling into workers.
    payload_designs = {
        name: circuit.clone(name) for name, circuit in designs.items()
    }
    flags = (telemetry.tracing_enabled(), telemetry.metrics_enabled())

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=options.jobs,
            initializer=jobmod.init_worker,
            initargs=(
                payload_designs, spec.kind, spec.seed,
                options.ladder, options.measure_overheads, flags,
            ),
        )

    pool = make_pool()
    inflight: Dict[Future, Tuple[JobRow, int]] = {}
    draining_since: Optional[float] = None

    def replace_broken_pool() -> ProcessPoolExecutor:
        # The pool is dead: every in-flight future raises the same
        # error.  A lone in-flight job is convicted on the spot;
        # multiple in-flight jobs all become suspects and re-run
        # isolated (see _charge_crash).
        alone = len(inflight) == 1
        for in_row, _attempts in inflight.values():
            _charge_crash(run, in_row, alone=alone)
        inflight.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        return make_pool()

    try:
        while True:
            run.promote_delayed()
            # Submission window: keep ~2 queued tasks per worker so idle
            # workers always have something without hoarding the queue.
            # While crash suspects exist the window collapses to one job
            # at a time, so the next pool death names its culprit.
            window = 1 if run.suspects else options.jobs * 2
            while (run.ready and run.budget_left()
                   and len(inflight) < window):
                row = run.ready.popleft()
                run.store.mark_running([row.job_id])
                attempts = run.store.record_attempt(row.job_id)
                try:
                    future = pool.submit(
                        jobmod.execute_payload_pooled,
                        _payload(row, attempts - 1, options),
                    )
                except BrokenProcessPool:
                    # The pool died before accepting this job — it never
                    # ran, so hand it straight back (no crash charge).
                    run.store.mark_pending([row.job_id])
                    run.ready.appendleft(row)
                    pool = replace_broken_pool()
                    continue
                inflight[future] = (row, attempts)
                run.summary.executed += 1
                telemetry.count("campaign.jobs_executed")
            if not inflight:
                if run.ready and run.budget_left():
                    continue
                if run.delayed and run.budget_left():
                    wake = min(eligible for eligible, _ in run.delayed)
                    while time.monotonic() < wake and not run.stop.requested:
                        time.sleep(
                            min(0.05, max(0.0, wake - time.monotonic()))
                        )
                    continue
                break
            if run.stop.requested and draining_since is None:
                draining_since = time.monotonic()
            if (draining_since is not None
                    and time.monotonic() - draining_since > options.drain_s):
                # Drain window exhausted: abandon in-flight work; their
                # rows return to pending (attempt already counted).
                run.store.mark_pending(
                    [row.job_id for row, _ in inflight.values()]
                )
                inflight.clear()
                break
            done, _ = wait(
                set(inflight), timeout=0.1, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                row, attempts = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    _charge_crash(run, row)
                    continue
                _adopt_worker_telemetry(result)
                run.suspects.discard(row.job_id)  # completed -> exonerated
                run.dispose(row, attempts, result)
            if broken:
                pool = replace_broken_pool()
        leftover = [row.job_id for row in run.ready] + [
            row.job_id for _, row in run.delayed
        ]
        if leftover:
            run.store.mark_pending(leftover)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _charge_crash(run: _Run, row: JobRow, alone: bool = False) -> None:
    """One worker-death charge against an in-flight job.

    ``alone`` means this job was the *only* one in flight when the pool
    died, which identifies it as the culprit definitively — it is
    quarantined immediately, regardless of its crash count.  Jobs that
    shared the pool with others become *suspects*: they are requeued and
    the loop drops to one-job-at-a-time until each suspect either
    completes (exonerated) or crashes alone (convicted), so an innocent
    job repeatedly co-resident with a crasher is never quarantined.
    """
    run.summary.crashes += 1
    telemetry.count("campaign.crashes")
    crashes = run.store.record_crash(row.job_id)
    run.store.record_event(
        row.job_id, "crash",
        f"worker died (#{crashes})" + (" [isolated]" if alone else ""),
    )
    if alone or crashes >= run.options.quarantine_limit:
        run.quarantine(row, "worker process died while executing this job",
                       "WorkerCrash")
    else:
        run.suspects.add(row.job_id)
        run.store.mark_pending([row.job_id])
        run.delayed.append(
            (time.monotonic() + _backoff_delay(run.options, crashes), row)
        )
        run.summary.retried += 1
        telemetry.count("campaign.retries")


def run_campaign(
    spec: CampaignSpec,
    db_path: str,
    options: Optional[CampaignOptions] = None,
    inline_designs: Optional[Mapping[str, Circuit]] = None,
) -> CampaignSummary:
    """Execute (or continue) a campaign spec against a result database.

    ``inline_designs`` carries in-memory circuits for ``db:<name>``
    sources — the API facade serializes them into the DB so later resumes
    can reload them without the caller's process.
    """
    options = options if options is not None else CampaignOptions()
    if options.jobs < 1:
        raise CampaignError("campaign needs at least one worker",
                            stage="campaign")
    start = time.perf_counter()
    with telemetry.span(
        "campaign.run", db=db_path, kind=spec.kind, workers=options.jobs
    ) as campaign_span, JobStore(db_path) as store:
        store.bind_spec(spec)
        if inline_designs:
            from ..netlist.verilog import write_verilog

            for name, circuit in inline_designs.items():
                store.store_design(name, f"db:{name}", write_verilog(circuit))
        resolved = resolve_designs(spec, store.design_verilog())
        for name, entry in resolved.items():
            if not entry.source.startswith("db:"):
                store.store_design(name, entry.source)
        designs = {name: entry.circuit for name, entry in resolved.items()}

        expanded = expand_jobs(spec, designs)
        inserted = store.insert_jobs(expanded)
        swept = store.sweep_stale_running()
        if swept:
            telemetry.count("campaign.stale_swept", swept)
        store.apply_overwrite(options.overwrite)

        summary = CampaignSummary(
            db_path=db_path,
            designs=list(designs),
            n_jobs=len(expanded),
            inserted=inserted,
            jobs=options.jobs,
        )
        stop = GracefulStop()
        run = _Run(store, options, summary, stop)
        run.ready.extend(store.pending_jobs())
        with stop:
            if options.jobs <= 1:
                _run_serial(run, designs, spec)
            else:
                _run_pooled(run, designs, spec)
        summary.counts = store.counts()
        summary.interrupted = stop.requested or (
            not summary.complete and options.max_jobs is not None
            and summary.executed >= options.max_jobs
        )
        summary.wall_seconds = time.perf_counter() - start
        store.flush()
        campaign_span.set(
            executed=summary.executed,
            interrupted=summary.interrupted,
            **{f"n_{key}": value for key, value in summary.counts.items()},
        )
        telemetry.observe("campaign.wall_seconds", summary.wall_seconds)
    return summary


def resume_campaign(
    db_path: str, options: Optional[CampaignOptions] = None
) -> CampaignSummary:
    """Continue a campaign from its stored spec (no spec re-entry needed)."""
    with JobStore(db_path) as store:
        spec = store.load_spec()
    if spec is None:
        raise CampaignError(
            f"{db_path!r} holds no campaign spec — run `campaign run` first",
            stage="campaign",
        )
    return run_campaign(spec, db_path, options)


def campaign_status(db_path: str) -> Dict[str, Any]:
    """A cheap read-only snapshot of a campaign DB (safe during a run)."""
    with JobStore(db_path) as store:
        spec = store.load_spec()
        counts = store.counts()
        n_jobs = sum(counts.values())
        terminal = sum(counts.get(state, 0) for state in TERMINAL_STATES)
        return {
            "db_path": db_path,
            "spec": None if spec is None else spec.to_json(),
            "designs": store.design_sources(),
            "counts": counts,
            "n_jobs": n_jobs,
            "terminal": terminal,
            "complete": n_jobs > 0 and terminal == n_jobs,
            "events": store.event_counts(),
        }


__all__ = [
    "CampaignOptions",
    "CampaignSummary",
    "GracefulStop",
    "campaign_status",
    "resume_campaign",
    "run_campaign",
]
