"""Tracing + metrics for the fingerprinting pipeline (off by default).

The paper's evaluation is entirely about per-stage costs — mapping
area/delay, location counts, verification effort — so every subsystem in
the pipeline publishes into this one layer instead of keeping private
``perf_counter`` bookkeeping:

* :func:`span` — nested wall-time spans with attributes
  (``span("cec.verify", outputs=8)``); a disabled tracer returns one
  shared no-op object, so hot paths pay a single flag test.
* :func:`count` / :func:`gauge` / :func:`observe` — guarded updates to
  the process-local :class:`MetricsRegistry`.
* :mod:`export <repro.telemetry.export>` — Chrome trace-event files
  (``chrome://tracing`` / Perfetto) and the JSON telemetry snapshot
  embedded in every CLI ``--json`` envelope.

Enable via ``--trace FILE`` / ``--metrics`` on any CLI subcommand, via
``FlowOptions(trace=True, metrics=True)`` on the :mod:`repro.api`
facade, or directly with :func:`enable` / :func:`enabled`.  Span trees
and metric snapshots serialize to plain dicts, which is how
``ProcessPoolExecutor`` workers in the batch flow report their telemetry
back to the parent process.  See ``docs/OBSERVABILITY.md`` for the span
taxonomy and how to read a trace.
"""

from .core import (
    NOOP_SPAN,
    Span,
    Tracer,
    disable,
    drain_spans,
    enable,
    enabled,
    get_tracer,
    metrics_enabled,
    span,
    span_from_dict,
    tracing_enabled,
)
from .metrics import (
    Histogram,
    MetricsRegistry,
    count,
    drain_metrics,
    gauge,
    get_registry,
    observe,
    safe_rate,
)
from .export import telemetry_snapshot, to_chrome_trace, write_chrome_trace

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "disable",
    "drain_spans",
    "enable",
    "enabled",
    "get_tracer",
    "metrics_enabled",
    "span",
    "span_from_dict",
    "tracing_enabled",
    "Histogram",
    "MetricsRegistry",
    "count",
    "drain_metrics",
    "gauge",
    "get_registry",
    "observe",
    "safe_rate",
    "telemetry_snapshot",
    "to_chrome_trace",
    "write_chrome_trace",
]
