"""Process-local metrics registry: counters, gauges, histograms.

The registry is the single accounting surface the pipeline publishes
into — SAT propagation counts, simulation words, batch throughput — and
the single surface benchmarks and the CLI JSON envelope read back.  All
module-level update helpers (:func:`count`, :func:`gauge`,
:func:`observe`) are guarded by the global telemetry flag: when metrics
are disabled they cost one flag test and touch nothing.

Snapshots are plain dicts, so worker processes return them with their
results and the parent folds them in with :meth:`MetricsRegistry.merge`
(counters and histograms add, gauges last-write-wins).
"""

from __future__ import annotations

import math
from typing import Any, Dict

from . import core


def safe_rate(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, but 0.0 for empty or instant runs.

    Coarse clocks can time a real unit of work at exactly zero seconds;
    every throughput figure in the codebase routes through this guard so
    an instant solve can never raise ``ZeroDivisionError``.
    """
    if denominator <= 0.0:
        return 0.0
    return numerator / denominator


class Histogram:
    """Streaming summary of observed values (count/sum/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return safe_rate(self.total, self.count)

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for one process."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def rate(self, numerator: str, denominator: str) -> float:
        """Ratio of two counters, zero-guarded (see :func:`safe_rate`)."""
        return safe_rate(
            self.counters.get(numerator, 0.0),
            self.counters.get(denominator, 0.0),
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable copy of the whole registry."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in self.histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another process's :meth:`snapshot` into this registry."""
        for name, amount in snapshot.get("counters", {}).items():
            self.count(name, amount)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, summary in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            if summary.get("count", 0):
                histogram.count += int(summary["count"])
                histogram.total += float(summary["sum"])
                histogram.min = min(histogram.min, float(summary["min"]))
                histogram.max = max(histogram.max, float(summary["max"]))

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def count(name: str, amount: float = 1.0) -> None:
    """Increment a counter — no-op while metrics are disabled."""
    if core._METRICS:
        _REGISTRY.count(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge — no-op while metrics are disabled."""
    if core._METRICS:
        _REGISTRY.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample — no-op while metrics are disabled."""
    if core._METRICS:
        _REGISTRY.observe(name, value)


def drain_metrics() -> Dict[str, Any]:
    """Snapshot and clear the registry (worker-to-parent hand-off)."""
    snapshot = _REGISTRY.snapshot()
    _REGISTRY.reset()
    return snapshot


__all__ = [
    "Histogram",
    "MetricsRegistry",
    "count",
    "drain_metrics",
    "gauge",
    "get_registry",
    "observe",
    "safe_rate",
]
