"""Exporters: JSON span/metric snapshots and Chrome trace-event files.

``to_chrome_trace`` emits the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev — complete (``"ph":
"X"``) events with microsecond timestamps, one track (``tid``) per
worker process, and span attributes in ``args``.  ``telemetry_snapshot``
produces the ``"telemetry"`` section of the unified CLI JSON envelope.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from .core import Span, get_tracer, span_from_dict
from .metrics import get_registry

SpanLike = Union[Span, Dict[str, Any]]


def _as_span(item: SpanLike) -> Span:
    return item if isinstance(item, Span) else span_from_dict(item)


def _emit_events(
    node: Span,
    events: List[Dict[str, Any]],
    pid: int,
    tid: int,
) -> None:
    # A span adopted from a worker carries its origin pid in ``worker``;
    # give each worker its own track so parallel copies render side by
    # side instead of stacked into one false call tree.
    tid = int(node.attrs.get("worker", tid))
    events.append(
        {
            "name": node.name,
            "cat": node.name.split(".", 1)[0],
            "ph": "X",
            "ts": node.start * 1e6,
            "dur": node.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {
                key: value
                for key, value in node.attrs.items()
                if isinstance(value, (str, int, float, bool)) or value is None
            },
        }
    )
    for child in node.children:
        _emit_events(child, events, pid, tid)


def to_chrome_trace(
    spans: Optional[Sequence[SpanLike]] = None, pid: int = 0
) -> Dict[str, Any]:
    """Span trees (default: the tracer's finished roots) as a trace dict."""
    if spans is None:
        spans = get_tracer().finished
    events: List[Dict[str, Any]] = []
    for root in spans:
        _emit_events(_as_span(root), events, pid, tid=0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, spans: Optional[Sequence[SpanLike]] = None
) -> int:
    """Write a ``chrome://tracing``-loadable file; returns the event count."""
    trace = to_chrome_trace(spans)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return len(trace["traceEvents"])


def telemetry_snapshot(
    spans: Optional[Sequence[SpanLike]] = None,
    include_spans: bool = False,
) -> Dict[str, Any]:
    """The ``"telemetry"`` section of the unified JSON envelope.

    Always includes the metrics snapshot and span counts; the full span
    trees are bulky, so they are only inlined on request (the CLI writes
    them to the ``--trace`` file instead).
    """
    if spans is None:
        spans = get_tracer().finished
    roots = [_as_span(root) for root in spans]
    payload: Dict[str, Any] = {
        "n_spans": sum(1 for root in roots for _ in root.walk()),
        "n_roots": len(roots),
        "subsystems": sorted(
            {node.name.split(".", 1)[0] for root in roots for node in root.walk()}
        ),
        "metrics": get_registry().snapshot(),
    }
    if include_spans:
        payload["spans"] = [root.as_dict() for root in roots]
    return payload


__all__ = [
    "telemetry_snapshot",
    "to_chrome_trace",
    "write_chrome_trace",
]
