"""Nested-span tracing with near-zero disabled overhead.

The tracer is process-local and off by default.  When tracing is
disabled, :func:`span` returns one shared no-op object — no ``Span`` is
allocated, no clock is read — so instrumentation can sit on hot paths
(the bit-parallel simulator, the SAT solver) without taxing them.  When
enabled, spans record wall-clock start/duration plus free-form
attributes and nest into trees; completed root spans accumulate on the
:class:`Tracer` until drained by an exporter.

Spans serialize to plain dicts (:meth:`Span.as_dict` /
:func:`span_from_dict`), which is how the batch flow ships span trees
from ``ProcessPoolExecutor`` workers back to the parent process
(:meth:`Tracer.adopt`).  Start times are expressed on the wall clock
(``time.time`` epoch), so spans gathered from different processes land
on one consistent timeline in a Chrome trace.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

#: Offset converting ``time.perf_counter()`` readings to wall-clock
#: seconds.  Captured once at import, so all spans of one process share
#: a monotonic base while staying comparable across processes.
_EPOCH_OFFSET = time.time() - time.perf_counter()

_TRACING = False
_METRICS = False


def tracing_enabled() -> bool:
    """True when spans are being recorded."""
    return _TRACING


def metrics_enabled() -> bool:
    """True when metric updates are being recorded."""
    return _METRICS


def enable(trace: bool = True, metrics: bool = True) -> None:
    """Turn telemetry on.  Flags are sticky until :func:`disable`.

    ``enable(trace=False, metrics=True)`` turns a single subsystem on
    without touching the other's current state — a ``False`` argument
    means "leave as is", not "force off"; use :func:`disable` to clear.
    """
    global _TRACING, _METRICS
    if trace:
        _TRACING = True
    if metrics:
        _METRICS = True


def disable() -> None:
    """Turn all telemetry off (recorded spans/metrics stay drainable)."""
    global _TRACING, _METRICS
    _TRACING = False
    _METRICS = False


@contextmanager
def enabled(trace: bool = True, metrics: bool = True):
    """Enable telemetry for a ``with`` block, restoring prior flags after.

    Yields the process tracer.  Spans recorded inside the block stay on
    the tracer for the caller to export or drain.
    """
    global _TRACING, _METRICS
    before = (_TRACING, _METRICS)
    if trace:
        _TRACING = True
    if metrics:
        _METRICS = True
    try:
        yield get_tracer()
    finally:
        _TRACING, _METRICS = before


class Span:
    """One timed, attributed, nestable region of work.

    Use via ``with telemetry.span("sat.solve", vars=n) as sp:``; call
    :meth:`set` to attach attributes discovered mid-flight (verdicts,
    counts).  Durations are wall-clock seconds.
    """

    __slots__ = ("name", "start", "duration", "attrs", "children")

    #: Spans constructed process-wide — the no-op overhead test asserts
    #: this does not move while telemetry is disabled.
    created = 0

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        Span.created += 1
        self.name = name
        self.start = time.perf_counter() + _EPOCH_OFFSET
        self.duration = 0.0
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List[Span] = []

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes on the live span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        get_tracer().finish(self)
        return False

    def walk(self) -> Iterable["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (recursive)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


def span_from_dict(payload: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.as_dict` output."""
    rebuilt = Span(payload["name"], payload.get("attrs"))
    rebuilt.start = float(payload.get("start", 0.0))
    rebuilt.duration = float(payload.get("duration", 0.0))
    rebuilt.children = [span_from_dict(c) for c in payload.get("children", ())]
    return rebuilt


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Process-local span collector.

    Keeps the stack of currently-open spans and the list of finished
    root spans.  Not thread-safe by design: the pipeline is process
    parallel, and each worker process owns its own tracer whose spans
    are shipped back as dicts (:meth:`adopt`).
    """

    def __init__(self) -> None:
        self._stack: List[Span] = []
        self.finished: List[Span] = []
        #: Live-progress hooks called with each span as it finishes
        #: (service layer → server-sent events).  Listeners must be fast
        #: and never raise into the traced code path; exceptions are
        #: swallowed here so a broken subscriber cannot fail a flow.
        self._listeners: List[Any] = []

    def add_listener(self, listener) -> None:
        """Subscribe ``listener(span)`` to every span finish."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Unsubscribe a listener (no-op when not subscribed)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def start(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        opened = Span(name, attrs)
        self._stack.append(opened)
        return opened

    def finish(self, closing: Span) -> None:
        closing.duration = time.perf_counter() + _EPOCH_OFFSET - closing.start
        # Pop down to the closing span so a leaked child (an exception
        # that skipped an __exit__) cannot corrupt later nesting.
        while self._stack:
            if self._stack.pop() is closing:
                break
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(closing)
        else:
            self.finished.append(closing)
        for listener in self._listeners:
            try:
                listener(closing)
            except Exception:  # noqa: BLE001 - see _listeners docstring
                pass

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def adopt(self, payloads: Iterable[Dict[str, Any]], **attrs: Any) -> List[Span]:
        """Graft serialized span trees (e.g. from a pool worker) in.

        Extra ``attrs`` are stamped onto each adopted root (typically
        ``worker=<pid>``).  Roots attach under the currently open span
        when one exists, else to the finished list.
        """
        adopted = []
        for payload in payloads:
            rebuilt = span_from_dict(payload)
            rebuilt.attrs.update(attrs)
            adopted.append(rebuilt)
        parent = self.current()
        if parent is not None:
            parent.children.extend(adopted)
        else:
            self.finished.extend(adopted)
        return adopted

    def drain(self) -> List[Span]:
        """Take (and clear) the finished root spans."""
        taken, self.finished = self.finished, []
        return taken

    def reset(self) -> None:
        """Drop all recorded and open spans (and any live listeners —
        fork-inherited subscribers must not leak into worker processes)."""
        self._stack.clear()
        self.finished.clear()
        self._listeners.clear()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, **attrs: Any):
    """Open a span (context manager) — or the no-op when tracing is off."""
    if not _TRACING:
        return NOOP_SPAN
    return _TRACER.start(name, attrs)


def drain_spans() -> List[Dict[str, Any]]:
    """Finished root spans as serializable dicts (clears the tracer)."""
    return [finished.as_dict() for finished in _TRACER.drain()]


__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "disable",
    "drain_spans",
    "enable",
    "enabled",
    "get_tracer",
    "metrics_enabled",
    "span",
    "span_from_dict",
    "tracing_enabled",
]
