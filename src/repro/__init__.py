"""repro — ODC-based circuit fingerprinting (Dunbar & Qu, DAC 2015).

A pure-Python reproduction of the paper's fingerprinting system together
with every substrate it depends on: netlist modelling and I/O, a cell
library, a technology mapper, Boolean/ODC analysis, logic simulation,
SAT-based equivalence checking, static timing analysis, power estimation,
the benchmark suite and the experiment harness.

Quickstart::

    from repro import fingerprint_flow
    from repro.bench import build_benchmark

    result = fingerprint_flow(build_benchmark("C432"))
    print(result.summary())
"""

from .budget import UNLIMITED, Budget, BudgetError
from .errors import (
    DesignLoadError,
    FaultInjectionError,
    ReproError,
    TraversalError,
    VerificationError,
    annotate,
)
from .cells import GENERIC_LIB, Cell, CellLibrary, generic_library
from .netlist import (
    Circuit,
    CircuitBuilder,
    Gate,
    NetlistError,
    parse_blif,
    parse_verilog,
    write_blif,
    write_verilog,
)
from .logic import TruthTable, global_odc, local_odc
from .sim import check_equivalence, exhaustive_equivalent, random_equivalent
from .sat import CecVerdict, SatStatus, check, sat_equivalent, solve_cnf
from .timing import analyze, critical_delay
from .power import estimate_power, total_power
from .analysis import Metrics, Overhead, circuit_overhead, measure
from .fingerprint import (
    BuyerRegistry,
    FinderOptions,
    FingerprintCodec,
    FingerprintedCircuit,
    LocationCatalog,
    capacity,
    collude,
    embed,
    extract,
    find_locations,
    full_assignment,
    proactive_delay_constrain,
    reactive_delay_constrain,
    trace,
)
from .techmap import map_network
from .flows import (
    FlowResult,
    LadderConfig,
    VerificationReport,
    VerificationTier,
    fingerprint_flow,
    verify_equivalence,
)

__version__ = "1.0.0"

__all__ = [
    "UNLIMITED",
    "Budget",
    "BudgetError",
    "DesignLoadError",
    "FaultInjectionError",
    "ReproError",
    "TraversalError",
    "VerificationError",
    "annotate",
    "GENERIC_LIB",
    "Cell",
    "CellLibrary",
    "generic_library",
    "Circuit",
    "CircuitBuilder",
    "Gate",
    "NetlistError",
    "parse_blif",
    "parse_verilog",
    "write_blif",
    "write_verilog",
    "TruthTable",
    "global_odc",
    "local_odc",
    "check_equivalence",
    "exhaustive_equivalent",
    "random_equivalent",
    "CecVerdict",
    "SatStatus",
    "check",
    "sat_equivalent",
    "solve_cnf",
    "analyze",
    "critical_delay",
    "estimate_power",
    "total_power",
    "Metrics",
    "Overhead",
    "circuit_overhead",
    "measure",
    "BuyerRegistry",
    "FinderOptions",
    "FingerprintCodec",
    "FingerprintedCircuit",
    "LocationCatalog",
    "capacity",
    "collude",
    "embed",
    "extract",
    "find_locations",
    "full_assignment",
    "proactive_delay_constrain",
    "reactive_delay_constrain",
    "trace",
    "map_network",
    "FlowResult",
    "LadderConfig",
    "VerificationReport",
    "VerificationTier",
    "fingerprint_flow",
    "verify_equivalence",
    "__version__",
]
