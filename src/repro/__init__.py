"""repro — ODC-based circuit fingerprinting (Dunbar & Qu, DAC 2015).

A pure-Python reproduction of the paper's fingerprinting system together
with every substrate it depends on: netlist modelling and I/O, a cell
library, a technology mapper, Boolean/ODC analysis, logic simulation,
SAT-based equivalence checking, static timing analysis, power estimation,
the benchmark suite and the experiment harness.

The supported entry path is the :mod:`repro.api` facade, re-exported
here::

    from repro import FlowOptions, fingerprint
    from repro.bench import build_benchmark

    result = fingerprint(build_benchmark("C432"), FlowOptions(trace=True))
    print(result.summary())

Telemetry (nested spans + metrics, Chrome-trace export) lives in
:mod:`repro.telemetry` and is off by default.  Pre-facade names
(``fingerprint_flow``, ``run_batch``, ``verify_equivalence``, and the
historical grab-bag of substrate re-exports) still resolve through a
lazy compatibility layer, but importing them from ``repro`` warns —
import substrate pieces from their own packages (``repro.netlist``,
``repro.sat``, ...) instead.
"""

import importlib
import warnings

from . import telemetry
from .api import (
    BatchResult,
    Circuit,
    FlowOptions,
    FlowResult,
    LadderConfig,
    LadderResult,
    batch,
    fingerprint,
    load_circuit,
    save_circuit,
    verify,
)

__version__ = "1.2.0"

__all__ = [
    "BatchResult",
    "Circuit",
    "FlowOptions",
    "FlowResult",
    "LadderConfig",
    "LadderResult",
    "batch",
    "fingerprint",
    "load_circuit",
    "save_circuit",
    "verify",
    "telemetry",
    "__version__",
]

#: Pre-facade top-level names -> defining module.  Resolved lazily (and
#: with a DeprecationWarning) so `from repro import parse_blif`-style
#: imports keep working while the documented surface stays the facade.
_COMPAT = {
    "UNLIMITED": "repro.budget",
    "Budget": "repro.budget",
    "BudgetError": "repro.budget",
    "DesignLoadError": "repro.errors",
    "FaultInjectionError": "repro.errors",
    "ReproError": "repro.errors",
    "TraversalError": "repro.errors",
    "VerificationError": "repro.errors",
    "annotate": "repro.errors",
    "GENERIC_LIB": "repro.cells",
    "Cell": "repro.cells",
    "CellLibrary": "repro.cells",
    "generic_library": "repro.cells",
    "CircuitBuilder": "repro.netlist",
    "Gate": "repro.netlist",
    "NetlistError": "repro.netlist",
    "parse_blif": "repro.netlist",
    "parse_verilog": "repro.netlist",
    "write_blif": "repro.netlist",
    "write_verilog": "repro.netlist",
    "TruthTable": "repro.logic",
    "global_odc": "repro.logic",
    "local_odc": "repro.logic",
    "check_equivalence": "repro.sim",
    "exhaustive_equivalent": "repro.sim",
    "random_equivalent": "repro.sim",
    "CecVerdict": "repro.sat",
    "SatStatus": "repro.sat",
    "check": "repro.sat",
    "sat_equivalent": "repro.sat",
    "solve_cnf": "repro.sat",
    "analyze": "repro.timing",
    "critical_delay": "repro.timing",
    "estimate_power": "repro.power",
    "total_power": "repro.power",
    "Metrics": "repro.analysis",
    "Overhead": "repro.analysis",
    "circuit_overhead": "repro.analysis",
    "measure": "repro.analysis",
    "BuyerRegistry": "repro.fingerprint",
    "FinderOptions": "repro.fingerprint",
    "FingerprintCodec": "repro.fingerprint",
    "FingerprintedCircuit": "repro.fingerprint",
    "LocationCatalog": "repro.fingerprint",
    "capacity": "repro.fingerprint",
    "collude": "repro.fingerprint",
    "embed": "repro.fingerprint",
    "extract": "repro.fingerprint",
    "find_locations": "repro.fingerprint",
    "full_assignment": "repro.fingerprint",
    "proactive_delay_constrain": "repro.fingerprint",
    "reactive_delay_constrain": "repro.fingerprint",
    "trace": "repro.fingerprint",
    "map_network": "repro.techmap",
    "VerificationReport": "repro.flows",
    "VerificationTier": "repro.flows",
    "fingerprint_flow": "repro.flows",
    "verify_equivalence": "repro.flows",
    "run_batch": "repro.flows",
}


def __getattr__(name):
    module_name = _COMPAT.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from 'repro' is deprecated; use the repro.api "
        f"facade or import it from {module_name!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(__all__) | set(_COMPAT))
