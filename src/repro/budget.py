"""Resource budgets for potentially-unbounded computations.

A :class:`Budget` bounds a verification step along three axes — wall-clock
time, SAT conflicts and SAT decisions — so that a hard miter can never take
the whole fingerprinting flow down.  Production equivalence checkers treat
"undecided within budget" as a first-class verdict; this module supplies
the bookkeeping that makes the same true here.

A :class:`Budget` is an immutable *specification*; call :meth:`Budget.start`
to obtain a :class:`BudgetClock` that tracks elapsed wall-clock time and
answers "is anything exhausted yet, and why?".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from .errors import ReproError


class BudgetError(ReproError, ValueError):
    """Raised for malformed budget specifications (e.g. negative limits)."""


@dataclass(frozen=True)
class Budget:
    """Limits for one bounded computation; ``None`` means unlimited.

    Attributes:
        deadline_s: Wall-clock limit in seconds.
        max_conflicts: SAT solver conflict limit.
        max_decisions: SAT solver decision limit.
    """

    deadline_s: Optional[float] = None
    max_conflicts: Optional[int] = None
    max_decisions: Optional[int] = None

    def __post_init__(self) -> None:
        for field_name in ("deadline_s", "max_conflicts", "max_decisions"):
            value = getattr(self, field_name)
            if value is not None and value < 0:
                raise BudgetError(
                    f"{field_name} must be non-negative, got {value}"
                )

    @property
    def unlimited(self) -> bool:
        """True when no axis is bounded."""
        return (
            self.deadline_s is None
            and self.max_conflicts is None
            and self.max_decisions is None
        )

    def start(self) -> "BudgetClock":
        """Begin tracking this budget against the wall clock."""
        return BudgetClock(self)

    def __str__(self) -> str:
        parts = []
        if self.deadline_s is not None:
            parts.append(f"deadline={self.deadline_s:g}s")
        if self.max_conflicts is not None:
            parts.append(f"conflicts<={self.max_conflicts}")
        if self.max_decisions is not None:
            parts.append(f"decisions<={self.max_decisions}")
        return "Budget(" + (", ".join(parts) or "unlimited") + ")"


#: Shared no-limit budget (the historical behaviour of every caller).
UNLIMITED = Budget()


class BudgetClock:
    """A started budget: answers exhaustion queries against live counters."""

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self._t0 = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since :meth:`Budget.start`."""
        return time.monotonic() - self._t0

    def remaining_seconds(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` when unbounded)."""
        if self.budget.deadline_s is None:
            return None
        return self.budget.deadline_s - self.elapsed()

    def over_deadline(self) -> bool:
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0.0

    def exhausted_reason(self, conflicts: int = 0, decisions: int = 0) -> Optional[str]:
        """Why the budget is spent, or ``None`` while within limits.

        The caller supplies its live conflict/decision counters; wall-clock
        time is read from this clock.
        """
        budget = self.budget
        if budget.max_conflicts is not None and conflicts >= budget.max_conflicts:
            return f"conflict limit {budget.max_conflicts} reached"
        if budget.max_decisions is not None and decisions >= budget.max_decisions:
            return f"decision limit {budget.max_decisions} reached"
        if self.over_deadline():
            return f"deadline {budget.deadline_s:g}s exceeded"
        return None


__all__ = ["Budget", "BudgetClock", "BudgetError", "UNLIMITED"]
